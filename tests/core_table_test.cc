#include "core/table.h"

#include <gtest/gtest.h>

#include "core/units.h"

namespace mntp::core {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(Format, FmtInt) { EXPECT_EQ(fmt_int(-42), "-42"); }

TEST(Format, FmtCountThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(9'988'576), "9,988,576");
  EXPECT_EQ(fmt_count(209'447'922), "209,447,922");
}

TEST(AsciiPlot, EmptySeries) {
  const Series s{.label = "empty", .points = {}};
  EXPECT_NE(ascii_plot(s).find("(no data)"), std::string::npos);
}

TEST(AsciiPlot, PlotsMarkersAndLegend) {
  Series s{.label = "ramp", .points = {{0, 0}, {1, 1}, {2, 2}}, .marker = '#'};
  const std::string out = ascii_plot(s, 40, 10, "title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("ramp"), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesAllListed) {
  std::vector<Series> ss{
      {.label = "a", .points = {{0, 0}, {1, 1}}, .marker = 'a'},
      {.label = "b", .points = {{0, 1}, {1, 0}}, .marker = 'b'},
  };
  const std::string out = ascii_plot(ss, 40, 8);
  EXPECT_NE(out.find("(a) a"), std::string::npos);
  EXPECT_NE(out.find("(b) b"), std::string::npos);
}

TEST(Units, DecibelArithmetic) {
  const Dbm rssi{-65.0};
  const Dbm noise{-92.0};
  const Decibels snr = rssi - noise;
  EXPECT_DOUBLE_EQ(snr.value(), 27.0);
  EXPECT_DOUBLE_EQ((rssi + Decibels{3.0}).value(), -62.0);
  EXPECT_DOUBLE_EQ((rssi - Decibels{3.0}).value(), -68.0);
  EXPECT_LT(Dbm{-80.0}, Dbm{-70.0});
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((75.0_dBm).value(), 75.0);
  EXPECT_DOUBLE_EQ((20_dB).value(), 20.0);
  EXPECT_DOUBLE_EQ((0_dBm - 75.0_dB).value(), -75.0);
}

TEST(Units, ToString) {
  EXPECT_EQ(Dbm{-75.5}.to_string(), "-75.5dBm");
  EXPECT_EQ(Decibels{20.0}.to_string(), "20.0dB");
}

}  // namespace
}  // namespace mntp::core
