// Live MNTP client integration tests against the full testbed.
#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.h"
#include "mntp/mntp_client.h"
#include "ntp/sntp_client.h"
#include "ntp/testbed.h"

namespace mntp::protocol {
namespace {

using core::Duration;
using core::TimePoint;

TEST(MntpClient, HeadToHeadBeatsSntpOnWireless) {
  ntp::TestbedConfig config;
  config.seed = 300;
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);

  ntp::SntpClientPolicy sntp_policy;
  sntp_policy.poll_interval = Duration::seconds(5);
  ntp::SntpClient sntp(bed.sim(), bed.target_clock(), bed.pool(),
                       bed.last_hop_up(), bed.last_hop_down(), sntp_policy);
  MntpClient mntp_client(bed.sim(), bed.target_clock(), bed.pool(),
                         bed.channel(), head_to_head_params(), bed.fork_rng());

  bed.start();
  sntp.start();
  mntp_client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(1));

  const auto sntp_offsets = sntp.offsets_ms();
  const auto mntp_offsets = mntp_client.engine().accepted_offsets_ms();
  ASSERT_GT(sntp_offsets.size(), 300u);
  ASSERT_GT(mntp_offsets.size(), 100u);
  // The headline claim: MNTP's reported offsets are far tighter.
  EXPECT_LT(core::max_abs(mntp_offsets), 40.0);
  EXPECT_GT(core::max_abs(sntp_offsets), 100.0);
  EXPECT_LT(core::rmse(mntp_offsets), core::rmse(sntp_offsets) / 3.0);
}

TEST(MntpClient, DefersUnderBadChannel) {
  ntp::TestbedConfig config;
  config.seed = 301;
  config.wireless = true;
  config.ntp_correction = false;
  ntp::Testbed bed(config);
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    head_to_head_params(), bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30));
  EXPECT_GT(client.engine().deferrals(), 20u);
  // Hint log records both favorable and unfavorable observations.
  std::size_t favorable = 0, unfavorable = 0;
  for (const auto& h : client.hint_log()) {
    (h.favorable ? favorable : unfavorable) += 1;
  }
  EXPECT_GT(favorable, 0u);
  EXPECT_GT(unfavorable, 0u);
}

TEST(MntpClient, FullAlgorithmTransitionsPhases) {
  ntp::TestbedConfig config;
  config.seed = 302;
  config.wireless = true;
  config.ntp_correction = false;
  ntp::Testbed bed(config);
  MntpParams params;
  params.warmup_period = Duration::minutes(5);
  params.warmup_wait_time = Duration::seconds(15);
  params.regular_wait_time = Duration::seconds(60);
  params.reset_period = Duration::hours(12);
  params.min_warmup_samples = 10;
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    params, bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(4));
  EXPECT_EQ(client.engine().phase(), Phase::kWarmup);
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30));
  EXPECT_EQ(client.engine().phase(), Phase::kRegular);
  // Warm-up produced records from multiple sources, regular from one.
  bool saw_warmup = false, saw_regular = false;
  for (const auto& r : client.engine().records()) {
    saw_warmup |= r.phase == Phase::kWarmup;
    saw_regular |= r.phase == Phase::kRegular;
  }
  EXPECT_TRUE(saw_warmup);
  EXPECT_TRUE(saw_regular);
}

TEST(MntpClient, ResetPeriodRestartsWarmup) {
  ntp::TestbedConfig config;
  config.seed = 303;
  config.wireless = true;
  config.ntp_correction = false;
  ntp::Testbed bed(config);
  MntpParams params;
  params.warmup_period = Duration::minutes(2);
  params.warmup_wait_time = Duration::seconds(10);
  params.regular_wait_time = Duration::seconds(30);
  params.reset_period = Duration::minutes(20);
  params.min_warmup_samples = 5;
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    params, bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(1));
  EXPECT_GE(client.engine().resets(), 2u);
}

TEST(MntpClient, AppliedCorrectionsKeepFreeRunningClockTight) {
  // Free-running drifting clock; MNTP applies accepted offsets as steps.
  ntp::TestbedConfig config;
  config.seed = 304;
  config.wireless = true;
  config.ntp_correction = false;
  config.client_clock.constant_skew_ppm = -15.0;
  ntp::Testbed bed(config);
  MntpParams params = head_to_head_params();
  params.apply_corrections_to_clock = true;
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    params, bed.fork_rng());
  bed.start();
  client.start();
  double worst = 0.0;
  for (int m = 10; m <= 60; m += 5) {
    bed.sim().run_until(TimePoint::epoch() + Duration::minutes(m));
    worst = std::max(worst, std::abs(bed.true_clock_offset_ms()));
  }
  // Uncorrected the clock would drift to ~-54 ms; MNTP holds it far
  // tighter (the bound allows for pre-bootstrap drift and spike slop).
  EXPECT_LT(worst, 35.0);
  EXPECT_LT(std::abs(bed.true_clock_offset_ms()), 20.0);
}

TEST(MntpClient, FalseTickersInPoolRejectedDuringWarmup) {
  ntp::TestbedConfig config;
  config.seed = 305;
  config.wireless = false;  // clean channel isolates the vote logic
  config.ntp_correction = false;
  config.pool.false_ticker_count = 2;
  config.pool.false_ticker_offset_s = 0.4;
  ntp::Testbed bed(config);
  MntpParams params;
  params.warmup_period = Duration::minutes(3);
  params.warmup_wait_time = Duration::seconds(10);
  params.min_warmup_samples = 8;
  // Wired run: hints come from the idle wireless channel (favorable).
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    params, bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(10));
  // Accepted warm-up offsets must sit near zero despite 400 ms tickers
  // being drawn into rounds regularly.
  const auto offsets = client.engine().accepted_offsets_ms();
  ASSERT_GT(offsets.size(), 5u);
  for (double o : offsets) {
    EXPECT_LT(std::fabs(o), 150.0) << "ticker leaked through the vote";
  }
}

TEST(MntpClient, StopHaltsActivity) {
  ntp::TestbedConfig config;
  config.seed = 306;
  ntp::Testbed bed(config);
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    head_to_head_params(), bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(5));
  client.stop();
  const auto sent = client.requests_sent();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30));
  EXPECT_EQ(client.requests_sent(), sent);
}

TEST(MntpClient, DeterministicPerSeed) {
  auto run = [] {
    ntp::TestbedConfig config;
    config.seed = 307;
    ntp::Testbed bed(config);
    MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                      head_to_head_params(), bed.fork_rng());
    bed.start();
    client.start();
    bed.sim().run_until(TimePoint::epoch() + Duration::minutes(15));
    return client.engine().accepted_offsets_ms();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mntp::protocol
