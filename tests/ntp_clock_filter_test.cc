#include "ntp/clock_filter.h"

#include <gtest/gtest.h>

namespace mntp::ntp {
namespace {

using core::Duration;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

TEST(ClockFilter, RejectsZeroStages) {
  ClockFilterParams p;
  p.stages = 0;
  EXPECT_THROW(ClockFilter{p}, std::invalid_argument);
}

TEST(ClockFilter, NominatesMinDelaySample) {
  ClockFilter f;
  (void)f.update(Duration::milliseconds(5), Duration::milliseconds(40), at_s(1));
  (void)f.update(Duration::milliseconds(100), Duration::milliseconds(400), at_s(2));
  const auto est = f.update(Duration::milliseconds(6), Duration::milliseconds(30),
                            at_s(3));
  ASSERT_TRUE(est.has_value());
  // Min-delay sample is the 30 ms one; its offset is nominated.
  EXPECT_EQ(est->offset, Duration::milliseconds(6));
  EXPECT_EQ(est->delay, Duration::milliseconds(30));
}

TEST(ClockFilter, SpikeDoesNotChangeNomination) {
  ClockFilter f;
  (void)f.update(Duration::milliseconds(2), Duration::milliseconds(20), at_s(1));
  const auto est = f.update(Duration::milliseconds(600),
                            Duration::milliseconds(1300), at_s(2));
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->offset, Duration::milliseconds(2));
}

TEST(ClockFilter, WindowEvictsOldSamples) {
  ClockFilterParams p;
  p.stages = 3;
  ClockFilter f(p);
  (void)f.update(Duration::milliseconds(1), Duration::milliseconds(10), at_s(1));
  (void)f.update(Duration::milliseconds(2), Duration::milliseconds(50), at_s(2));
  (void)f.update(Duration::milliseconds(3), Duration::milliseconds(60), at_s(3));
  // The 10 ms-delay sample falls out of the 3-stage window here.
  const auto est = f.update(Duration::milliseconds(4), Duration::milliseconds(70),
                            at_s(4));
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->delay, Duration::milliseconds(50));
  EXPECT_EQ(est->offset, Duration::milliseconds(2));
}

TEST(ClockFilter, DispersionAgesWithSampleAge) {
  ClockFilterParams p;
  p.phi = 15e-6;
  p.base_dispersion = Duration::microseconds(500);
  ClockFilter f(p);
  (void)f.update(Duration::milliseconds(1), Duration::milliseconds(10), at_s(0));
  // 100 s later the nominated (old) sample has aged.
  const auto est = f.update(Duration::milliseconds(2),
                            Duration::milliseconds(500), at_s(100));
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->dispersion.to_seconds(), 500e-6 + 15e-6 * 100.0, 1e-6);
}

TEST(ClockFilter, JitterReflectsOffsetSpread) {
  ClockFilter f;
  (void)f.update(Duration::milliseconds(0), Duration::milliseconds(10), at_s(1));
  (void)f.update(Duration::milliseconds(8), Duration::milliseconds(20), at_s(2));
  const auto est = f.update(Duration::milliseconds(-8),
                            Duration::milliseconds(20), at_s(3));
  ASSERT_TRUE(est.has_value());
  // Nominated offset 0; other offsets +-8 ms -> jitter 8 ms.
  EXPECT_NEAR(est->jitter_s, 8e-3, 1e-6);
}

TEST(ClockFilter, PopcornSuppressorSwallowsLoneSpike) {
  ClockFilterParams p;
  p.popcorn_gate = 3.0;
  p.popcorn_jitter_floor_s = 5e-3;
  ClockFilter f(p);
  (void)f.update(Duration::milliseconds(1), Duration::milliseconds(10), at_s(1));
  (void)f.update(Duration::milliseconds(2), Duration::milliseconds(11), at_s(2));
  // 500 ms offset >> 3 * max(jitter, 5 ms): suppressed.
  const auto est = f.update(Duration::milliseconds(500),
                            Duration::milliseconds(12), at_s(3));
  EXPECT_FALSE(est.has_value());
  EXPECT_EQ(f.samples_suppressed(), 1u);
  // Filter state still serves the previous estimate.
  ASSERT_TRUE(f.current().has_value());
  EXPECT_EQ(f.current()->offset, Duration::milliseconds(1));
}

TEST(ClockFilter, PersistentLevelShiftEscapesPopcornGate) {
  // Regression: suppressed samples never enter the stage window, so
  // before the escape hatch a genuine level shift was suppressed on
  // every sample, forever. The second consecutive out-of-gate sample
  // must be admitted and the filter must converge on the new level.
  ClockFilterParams p;
  p.popcorn_gate = 3.0;
  p.popcorn_jitter_floor_s = 5e-3;
  ClockFilter f(p);
  (void)f.update(Duration::milliseconds(1), Duration::milliseconds(10), at_s(1));
  (void)f.update(Duration::milliseconds(2), Duration::milliseconds(11), at_s(2));
  // The clock steps by 500 ms and *stays* there.
  EXPECT_FALSE(f.update(Duration::milliseconds(501), Duration::milliseconds(9),
                        at_s(3))
                   .has_value());
  const auto est = f.update(Duration::milliseconds(502),
                            Duration::milliseconds(8), at_s(4));
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(f.samples_suppressed(), 1u);
  // The admitted sample has the window's minimum delay: nominated.
  EXPECT_EQ(est->offset, Duration::milliseconds(502));
}

TEST(ClockFilter, NonConsecutiveSpikesEachSuppressed) {
  // An in-gate sample disarms the escape hatch: isolated popcorn spikes
  // separated by good samples are each swallowed.
  ClockFilterParams p;
  p.popcorn_gate = 3.0;
  ClockFilter f(p);
  (void)f.update(Duration::milliseconds(1), Duration::milliseconds(10), at_s(1));
  EXPECT_FALSE(f.update(Duration::milliseconds(400), Duration::milliseconds(12),
                        at_s(2))
                   .has_value());
  EXPECT_TRUE(f.update(Duration::milliseconds(2), Duration::milliseconds(11),
                       at_s(3))
                  .has_value());
  EXPECT_FALSE(f.update(Duration::milliseconds(-350), Duration::milliseconds(13),
                        at_s(4))
                   .has_value());
  EXPECT_EQ(f.samples_suppressed(), 2u);
}

TEST(ClockFilter, MinDelayTieBreaksToOldestStage) {
  // Pin the tie-breaking rule: with equal delays the *first* (oldest)
  // stage wins the nomination — the strict `<` scan keeps the earliest
  // minimum. Downstream freshness bookkeeping relies on this being
  // stable, so a silent flip to last-wins would churn re-disciplines.
  ClockFilter f;
  (void)f.update(Duration::milliseconds(3), Duration::milliseconds(20), at_s(1));
  const auto est = f.update(Duration::milliseconds(9), Duration::milliseconds(20),
                            at_s(2));
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->offset, Duration::milliseconds(3));
}

TEST(ClockFilter, PopcornDisabledByDefault) {
  ClockFilter f;  // default params
  (void)f.update(Duration::milliseconds(1), Duration::milliseconds(10), at_s(1));
  const auto est = f.update(Duration::milliseconds(500),
                            Duration::milliseconds(11), at_s(2));
  EXPECT_TRUE(est.has_value());
  EXPECT_EQ(f.samples_suppressed(), 0u);
}

TEST(ClockFilter, FreshnessConsumedOnce) {
  ClockFilter f;
  const auto e1 = f.update(Duration::milliseconds(1), Duration::milliseconds(10),
                           at_s(1));
  ASSERT_TRUE(e1.has_value());
  EXPECT_TRUE(e1->fresh);
  // New sample with larger delay: the *old* sample stays nominated, and
  // its nomination has already been consumed.
  const auto e2 = f.update(Duration::milliseconds(2), Duration::milliseconds(90),
                           at_s(2));
  ASSERT_TRUE(e2.has_value());
  EXPECT_FALSE(e2->fresh);
  // A new min-delay sample is a fresh nomination.
  const auto e3 = f.update(Duration::milliseconds(3), Duration::milliseconds(5),
                           at_s(3));
  ASSERT_TRUE(e3.has_value());
  EXPECT_TRUE(e3->fresh);
}

TEST(ClockFilter, ResetClearsEverything) {
  ClockFilter f;
  (void)f.update(Duration::milliseconds(1), Duration::milliseconds(10), at_s(1));
  f.reset();
  EXPECT_FALSE(f.current().has_value());
  EXPECT_EQ(f.samples_seen(), 0u);
  const auto est = f.update(Duration::milliseconds(2), Duration::milliseconds(10),
                            at_s(2));
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(est->fresh);
}

TEST(PeerEstimate, RootDistance) {
  PeerEstimate e;
  e.delay = Duration::milliseconds(40);
  e.dispersion = Duration::milliseconds(3);
  EXPECT_EQ(e.root_distance(), Duration::milliseconds(23));
}

}  // namespace
}  // namespace mntp::ntp
