#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mntp::core {
namespace {

TEST(ThreadPool, InlinePoolSpawnsNoThreads) {
  ThreadPool zero(0);
  ThreadPool one(1);
  EXPECT_EQ(zero.size(), 0u);
  EXPECT_EQ(one.size(), 0u);
  // submit runs inline and synchronously.
  int ran = 0;
  zero.submit([&] { ++ran; });
  one.submit([&] { ++ran; });
  EXPECT_EQ(ran, 2);
}

TEST(ThreadPool, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForDeterministicSlots) {
  // fn(i) writing slot i gives output identical to the serial loop.
  auto f = [](std::size_t i) { return static_cast<double>(i * i) * 0.5; };
  std::vector<double> serial(513), parallel(513);
  for (std::size_t i = 0; i < serial.size(); ++i) serial[i] = f(i);
  ThreadPool pool(3);
  pool.parallel_for(0, parallel.size(),
                    [&](std::size_t i) { parallel[i] = f(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, ParallelForEmptyAndSubrange) {
  ThreadPool pool(2);
  std::vector<int> hits(10, 0);
  pool.parallel_for(4, 4, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 0);
  pool.parallel_for(3, 7, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 4);
  EXPECT_EQ(hits[3], 1);
  EXPECT_EQ(hits[6], 1);
  EXPECT_EQ(hits[7], 0);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(0, 64,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // The failing index aborts only itself; the rest of the range ran.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, ParallelForInlineOnSingleWorkerPool) {
  ThreadPool pool(1);
  std::vector<int> order;
  // Inline execution means strictly ascending order — a property only
  // the serial path has.
  pool.parallel_for(0, 50, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ReusableAcrossParallelForCalls) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(0, 100, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 20u * (99u * 100u / 2u));
}

TEST(ThreadPool, DefaultWorkersPositive) {
  EXPECT_GE(ThreadPool::default_workers(), 1u);
}

}  // namespace
}  // namespace mntp::core
