#include "core/ring_buffer.h"

#include <gtest/gtest.h>

#include <string>

namespace mntp::core {
namespace {

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, FillsThenEvictsOldest) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);
  rb.push(4);  // evicts 1
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 4);
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[1], 3);
  EXPECT_EQ(rb[2], 4);
}

TEST(RingBuffer, ManyWrapArounds) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 100; ++i) rb.push(i);
  EXPECT_EQ(rb.to_vector(), (std::vector<int>{96, 97, 98, 99}));
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<std::string> rb(2);
  rb.push("a");
  rb.push("b");
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  rb.push("c");
  EXPECT_EQ(rb.front(), "c");
}

TEST(RingBuffer, MutableIndexing) {
  RingBuffer<int> rb(2);
  rb.push(10);
  rb.push(20);
  rb[0] = 99;
  EXPECT_EQ(rb.front(), 99);
}

TEST(RingBuffer, ToVectorPartial) {
  RingBuffer<int> rb(5);
  rb.push(7);
  rb.push(8);
  EXPECT_EQ(rb.to_vector(), (std::vector<int>{7, 8}));
}

TEST(RingBuffer, CapacityStable) {
  RingBuffer<int> rb(3);
  for (int i = 0; i < 10; ++i) rb.push(i);
  EXPECT_EQ(rb.capacity(), 3u);
  EXPECT_EQ(rb.size(), 3u);
}

}  // namespace
}  // namespace mntp::core
