#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "core/json.h"
#include "core/time.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"

namespace mntp::obs {
namespace {

using core::Duration;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

TEST(TimeSeriesRecorder, DisabledRegistrationIsInert) {
  TimeSeriesRecorder rec;  // enabled() defaults to false
  ProbeHandle h = rec.probe("x", {}, [](TimePoint) { return 1.0; });
  EXPECT_FALSE(h.active());
  rec.sample(at_s(1));
  EXPECT_EQ(rec.series_count(), 0u);
  EXPECT_EQ(rec.samples_taken(), 0u);
}

TEST(TimeSeriesRecorder, SamplesCallbackProbe) {
  TimeSeriesRecorder rec;
  rec.set_enabled(true);
  double value = 10.0;
  ProbeHandle h = rec.probe("x", {{"k", "v"}},
                            [&](TimePoint) { return value; });
  ASSERT_TRUE(h.active());
  rec.sample(at_s(1));
  value = 30.0;
  rec.sample(at_s(2));
  const auto series = rec.series();
  ASSERT_EQ(series.size(), 1u);
  const TimeSeries& s = *series[0];
  EXPECT_EQ(s.name(), "x");
  EXPECT_EQ(s.probe_kind(), "callback");
  ASSERT_EQ(s.points().size(), 2u);
  EXPECT_EQ(s.points()[0].t_ns, at_s(1).ns());
  EXPECT_DOUBLE_EQ(s.points()[0].last, 10.0);
  EXPECT_DOUBLE_EQ(s.points()[1].last, 30.0);
  EXPECT_EQ(s.samples(), 2u);
}

TEST(TimeSeriesRecorder, NulloptSkipsTheSample) {
  TimeSeriesRecorder rec;
  rec.set_enabled(true);
  bool ready = false;
  ProbeHandle h =
      rec.probe("x", {}, [&](TimePoint) -> std::optional<double> {
        if (!ready) return std::nullopt;
        return 5.0;
      });
  rec.sample(at_s(1));
  ready = true;
  rec.sample(at_s(2));
  const TimeSeries& s = *rec.series()[0];
  ASSERT_EQ(s.points().size(), 1u);  // the nullopt tick left no point
  EXPECT_EQ(s.points()[0].t_ns, at_s(2).ns());
}

TEST(TimeSeriesRecorder, CounterProbeRecordsDeltas) {
  MetricsRegistry reg;
  Counter* c = reg.counter("n");
  TimeSeriesRecorder rec;
  rec.set_enabled(true);
  ProbeHandle h = rec.counter_probe("n", {}, c);
  rec.sample(at_s(1));  // first sample: delta from 0
  c->inc(5);
  rec.sample(at_s(2));
  c->inc(2);
  rec.sample(at_s(3));
  const TimeSeries& s = *rec.series()[0];
  EXPECT_EQ(s.probe_kind(), "counter");
  ASSERT_EQ(s.points().size(), 3u);
  EXPECT_DOUBLE_EQ(s.points()[0].last, 0.0);
  EXPECT_DOUBLE_EQ(s.points()[1].last, 5.0);
  EXPECT_DOUBLE_EQ(s.points()[2].last, 2.0);
}

TEST(TimeSeriesRecorder, GaugeProbeReadsCurrentValue) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("g");
  TimeSeriesRecorder rec;
  rec.set_enabled(true);
  ProbeHandle h = rec.gauge_probe("g", {}, g);
  g->set(2.5);
  rec.sample(at_s(1));
  g->set(-1.0);
  rec.sample(at_s(2));
  const TimeSeries& s = *rec.series()[0];
  EXPECT_EQ(s.probe_kind(), "gauge");
  ASSERT_EQ(s.points().size(), 2u);
  EXPECT_DOUBLE_EQ(s.points()[0].last, 2.5);
  EXPECT_DOUBLE_EQ(s.points()[1].last, -1.0);
}

TEST(TimeSeriesRecorder, CompactionConservesSamplesAndDoublesStride) {
  TimeSeriesRecorder::Options opt;
  opt.series_capacity = 8;
  TimeSeriesRecorder rec(opt);
  rec.set_enabled(true);
  int i = 0;
  ProbeHandle h =
      rec.probe("x", {}, [&](TimePoint) { return static_cast<double>(i); });
  for (i = 0; i < 100; ++i) rec.sample(at_s(i + 1));
  const TimeSeries& s = *rec.series()[0];
  EXPECT_EQ(s.samples(), 100u);
  EXPECT_LE(s.points().size(), 8u);
  EXPECT_GE(s.stride(), 2u);
  // Nothing dropped: per-point counts sum to the raw sample count, and
  // each point's min/mean/max bracket correctly.
  std::uint64_t total = 0;
  std::int64_t last_t = -1;
  for (const TimeSeriesPoint& p : s.points()) {
    total += p.count;
    EXPECT_LE(p.min, p.mean());
    EXPECT_LE(p.mean(), p.max);
    EXPECT_LE(p.min, p.last);
    EXPECT_LE(p.last, p.max);
    EXPECT_GT(p.t_ns, last_t);
    last_t = p.t_ns;
  }
  EXPECT_EQ(total, 100u);
  // The overall extrema survive downsampling.
  EXPECT_DOUBLE_EQ(s.points().front().min, 0.0);
  EXPECT_DOUBLE_EQ(s.points().back().max, 99.0);
  EXPECT_DOUBLE_EQ(s.points().back().last, 99.0);
}

TEST(TimeSeriesRecorder, NameCollisionCreatesFreshSeries) {
  TimeSeriesRecorder rec;
  rec.set_enabled(true);
  ProbeHandle a = rec.probe("x", {}, [](TimePoint) { return 1.0; });
  ProbeHandle b = rec.probe("x", {}, [](TimePoint) { return 2.0; });
  rec.sample(at_s(1));
  ASSERT_EQ(rec.series_count(), 2u);
  EXPECT_EQ(rec.series()[0]->name(), "x");
  EXPECT_EQ(rec.series()[1]->name(), "x#2");
}

TEST(TimeSeriesRecorder, HandleDestructionStopsSamplingButKeepsData) {
  TimeSeriesRecorder rec;
  rec.set_enabled(true);
  {
    ProbeHandle h = rec.probe("x", {}, [](TimePoint) { return 1.0; });
    rec.sample(at_s(1));
  }
  rec.sample(at_s(2));  // probe gone: no new point, no dangling callback
  ASSERT_EQ(rec.series_count(), 1u);
  EXPECT_EQ(rec.series()[0]->points().size(), 1u);
}

TEST(TimeSeriesRecorder, SuppressScopeMakesRegistrationInert) {
  TimeSeriesRecorder rec;
  rec.set_enabled(true);
  EXPECT_TRUE(rec.capturing());
  {
    TimeSeriesRecorder::SuppressScope suppress;
    EXPECT_FALSE(rec.capturing());
    ProbeHandle h = rec.probe("x", {}, [](TimePoint) { return 1.0; });
    EXPECT_FALSE(h.active());
  }
  EXPECT_TRUE(rec.capturing());
  // A disengaged scope (replicate 0's path) changes nothing.
  TimeSeriesRecorder::SuppressScope noop(false);
  EXPECT_TRUE(rec.capturing());
}

TEST(TimeSeriesRecorder, WriteTimelineRoundTrips) {
  TimeSeriesRecorder rec;
  rec.set_enabled(true);
  rec.set_cadence(Duration::milliseconds(500));
  ProbeHandle h = rec.probe("a.b", {{"dir", "up"}},
                            [](TimePoint t) { return t.to_seconds(); });
  ProbeHandle empty =
      rec.probe("never", {}, [](TimePoint) -> std::optional<double> {
        return std::nullopt;
      });
  rec.sample(at_s(1));
  rec.sample(at_s(2));

  std::ostringstream out;
  write_timeline(out, rec, "unit_test", at_s(3));
  std::istringstream in(out.str());
  std::string line;

  ASSERT_TRUE(std::getline(in, line));
  auto meta = core::Json::parse(line);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value()["type"].as_string(), "meta");
  EXPECT_EQ(meta.value()["kind"].as_string(), "mntp_timeline");
  EXPECT_EQ(meta.value()["schema_version"].as_int(), 1);
  EXPECT_EQ(meta.value()["run"].as_string(), "unit_test");
  EXPECT_EQ(meta.value()["cadence_ns"].as_int(),
            Duration::milliseconds(500).ns());
  EXPECT_EQ(meta.value()["series_count"].as_int(), 1);  // empty one skipped

  ASSERT_TRUE(std::getline(in, line));
  auto series = core::Json::parse(line);
  ASSERT_TRUE(series.ok());
  const core::Json& s = series.value();
  EXPECT_EQ(s["type"].as_string(), "series");
  EXPECT_EQ(s["name"].as_string(), "a.b");
  EXPECT_EQ(s["labels"]["dir"].as_string(), "up");
  EXPECT_EQ(s["probe"].as_string(), "callback");
  EXPECT_EQ(s["samples"].as_int(), 2);
  const auto& points = s["points"].as_array();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].as_array()[0].as_int(), at_s(1).ns());
  EXPECT_DOUBLE_EQ(points[1].as_array()[4].as_double(), 2.0);

  EXPECT_FALSE(std::getline(in, line));  // nothing after the last series
}

TEST(SimulationSampler, RunUntilSamplesOnCadence) {
  Telemetry telemetry;
  telemetry.timeseries().set_enabled(true);
  telemetry.timeseries().set_cadence(Duration::seconds(1));
  sim::Simulation sim;
  sim.set_telemetry(telemetry);
  // The queue-depth probe is registered by the simulation itself; park a
  // few events so the depth is nonzero.
  sim.after(Duration::seconds(10), [] {});
  sim.run_until(TimePoint::epoch() + Duration::seconds(5));
  const auto series = telemetry.timeseries().series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0]->name(), "sim.queue_depth");
  // Cadence 1 s over [0, 5] with the sampler armed at t=0: 6 ticks.
  EXPECT_EQ(series[0]->samples(), 6u);
  // A second run_until keeps sampling where it left off.
  sim.run_until(TimePoint::epoch() + Duration::seconds(8));
  EXPECT_EQ(series[0]->samples(), 9u);
}

TEST(SimulationSampler, DisabledRecorderSchedulesNothing) {
  Telemetry telemetry;  // timeseries disabled
  sim::Simulation sim;
  sim.set_telemetry(telemetry);
  sim.after(Duration::seconds(1), [] {});
  sim.run_until(TimePoint::epoch() + Duration::seconds(5));
  // Only the user event ran: the sampler added zero events, so runs
  // without --timeline-out are bit-identical to pre-recorder builds.
  EXPECT_EQ(sim.events_executed(), 1u);
  EXPECT_EQ(telemetry.timeseries().series_count(), 0u);
}

}  // namespace
}  // namespace mntp::obs
