// Query-tracer tests: lifecycle and latching, store bounds, ambient
// scoping, JSONL serialization, engine round ownership, the tracing-off
// bit-identity guarantee, and thread safety under the parallel tuner.
#include "obs/query_trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/json.h"
#include "core/rng.h"
#include "mntp/engine.h"
#include "mntp/params.h"
#include "mntp/trace.h"
#include "mntp/tuner.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace mntp::obs {
namespace {

using core::TimePoint;

TimePoint at(std::int64_t ns) { return TimePoint::from_ns(ns); }

TEST(QueryTracer, DisabledMintsNothing) {
  QueryTracer tracer;  // off by default
  EXPECT_EQ(tracer.begin(at(1), "round"), 0u);
  tracer.stage(0, at(2), "gate", Reason::kOk);
  tracer.finish(0, at(3), Reason::kOk);
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.minted(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(QueryTracer, LifecycleRecordsStagesAndVerdict) {
  QueryTracer tracer;
  tracer.set_enabled(true);
  const QueryId round = tracer.begin(at(100), "round");
  ASSERT_NE(round, 0u);
  const QueryId exchange = tracer.begin(at(110), "exchange", round);
  tracer.stage(round, at(105), "gate", Reason::kOk, {{"rssi_dbm", -60.0}});
  tracer.stage(exchange, at(120), "hop", Reason::kNone,
               {{"hop", std::string("wifi.up")}});
  tracer.finish(exchange, at(130), Reason::kOk, {{"offset_ms", 1.5}});
  tracer.finish(round, at(140), Reason::kAcceptedRegular);

  const auto traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].id, round);
  EXPECT_EQ(traces[0].parent, 0u);
  EXPECT_EQ(traces[0].kind, "round");
  EXPECT_EQ(traces[0].started, at(100));
  ASSERT_EQ(traces[0].stages.size(), 2u);
  EXPECT_EQ(traces[0].stages[0].stage, "gate");
  EXPECT_EQ(traces[0].stages[1].stage, "verdict");
  EXPECT_TRUE(traces[0].finished);
  EXPECT_EQ(traces[0].verdict(), Reason::kAcceptedRegular);

  EXPECT_EQ(traces[1].id, exchange);
  EXPECT_EQ(traces[1].parent, round);
  EXPECT_EQ(traces[1].kind, "exchange");
  EXPECT_EQ(traces[1].verdict(), Reason::kOk);
}

TEST(QueryTracer, FinishLatchesAgainstStragglers) {
  QueryTracer tracer;
  tracer.set_enabled(true);
  const QueryId id = tracer.begin(at(1), "exchange");
  tracer.finish(id, at(2), Reason::kTimeout);
  // A reply landing after the timeout verdict records nothing — exactly
  // what a real client could observe.
  tracer.stage(id, at(3), "server", Reason::kOk);
  tracer.finish(id, at(4), Reason::kOk);
  const auto traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].stages.size(), 1u);
  EXPECT_EQ(traces[0].verdict(), Reason::kTimeout);
}

TEST(QueryTracer, StageCapDropsButVerdictStillLands) {
  QueryTracer tracer(QueryTracer::Limits{.max_queries = 8,
                                         .max_stages_per_query = 2});
  tracer.set_enabled(true);
  const QueryId id = tracer.begin(at(1), "round");
  tracer.stage(id, at(2), "a", Reason::kNone);
  tracer.stage(id, at(3), "b", Reason::kNone);
  tracer.stage(id, at(4), "c", Reason::kNone);  // over the cap: dropped
  tracer.finish(id, at(5), Reason::kOk);        // verdict always lands
  const auto traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].stages.size(), 3u);
  EXPECT_EQ(traces[0].stages[2].stage, "verdict");
  EXPECT_EQ(traces[0].verdict(), Reason::kOk);
}

TEST(QueryTracer, QueryCapKeepsIdsMonotonicAndCountsDrops) {
  QueryTracer tracer(QueryTracer::Limits{.max_queries = 2,
                                         .max_stages_per_query = 8});
  tracer.set_enabled(true);
  const QueryId a = tracer.begin(at(1), "round");
  const QueryId b = tracer.begin(at(2), "round");
  const QueryId c = tracer.begin(at(3), "round");  // store full
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // ids stay monotonic even when the body is dropped
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.stage(c, at(4), "gate", Reason::kOk);  // silently no-ops
  tracer.finish(c, at(5), Reason::kOk);
  EXPECT_EQ(tracer.snapshot().size(), 2u);
  EXPECT_EQ(tracer.minted(), 3u);
}

TEST(QueryTracer, AmbientScopeInstallsNestsAndRestores) {
  QueryTracer tracer;
  tracer.set_enabled(true);
  EXPECT_EQ(ambient_query().tracer, nullptr);
  const QueryId outer = tracer.begin(at(1), "round");
  {
    ActiveQueryScope outer_scope(tracer, outer);
    EXPECT_EQ(ambient_query().tracer, &tracer);
    EXPECT_EQ(ambient_query().id, outer);
    {
      // id 0 installs "no ambient", so callers can wrap unconditionally.
      ActiveQueryScope inner_scope(tracer, 0);
      EXPECT_EQ(ambient_query().tracer, nullptr);
      EXPECT_EQ(ambient_query().id, 0u);
    }
    EXPECT_EQ(ambient_query().id, outer);
  }
  EXPECT_EQ(ambient_query().tracer, nullptr);
}

TEST(QueryTracer, JsonlSerializesMetaAndTypedFields) {
  QueryTracer tracer;
  tracer.set_enabled(true);
  const QueryId id = tracer.begin(at(1'000'000'000), "round");
  tracer.stage(id, at(2'000'000'000), "gate", Reason::kChannelDefer,
               {{"rssi_dbm", -78.5},
                {"retries", std::int64_t{3}},
                {"hop", std::string("wifi.up")},
                {"exhausted", true}});
  tracer.finish(id, at(3'000'000'000), Reason::kChannelDefer,
                {{"phase", std::string("warmup")}});

  const std::string jsonl = tracer.to_jsonl("test_run", at(4'000'000'000));
  std::istringstream stream(jsonl);
  std::vector<std::string> lines;
  for (std::string line; std::getline(stream, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);

  const auto meta = core::Json::parse(lines[0]);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value()["type"].as_string(), "meta");
  EXPECT_EQ(meta.value()["kind"].as_string(), "mntp_query_trace");
  EXPECT_EQ(meta.value()["schema_version"].as_int(), 1);
  EXPECT_EQ(meta.value()["run"].as_string(), "test_run");
  EXPECT_EQ(meta.value()["sim_end_ns"].as_int(), 4'000'000'000);
  EXPECT_EQ(meta.value()["query_count"].as_int(), 1);
  EXPECT_EQ(meta.value()["dropped"].as_int(), 0);

  const auto query = core::Json::parse(lines[1]);
  ASSERT_TRUE(query.ok());
  const core::Json& q = query.value();
  EXPECT_EQ(q["type"].as_string(), "query");
  EXPECT_EQ(q["id"].as_int(), static_cast<std::int64_t>(id));
  EXPECT_EQ(q["parent"].as_int(), 0);
  EXPECT_EQ(q["kind"].as_string(), "round");
  EXPECT_EQ(q["start_ns"].as_int(), 1'000'000'000);
  ASSERT_EQ(q["stages"].as_array().size(), 2u);
  const core::Json& gate = q["stages"].as_array()[0];
  EXPECT_EQ(gate["t_ns"].as_int(), 2'000'000'000);
  EXPECT_EQ(gate["stage"].as_string(), "gate");
  EXPECT_EQ(gate["reason"].as_string(), "channel_defer");
  EXPECT_DOUBLE_EQ(gate["fields"]["rssi_dbm"].as_double(), -78.5);
  EXPECT_EQ(gate["fields"]["retries"].as_int(), 3);
  EXPECT_EQ(gate["fields"]["hop"].as_string(), "wifi.up");
  EXPECT_TRUE(gate["fields"]["exhausted"].as_bool());
  const core::Json& verdict = q["stages"].as_array()[1];
  EXPECT_EQ(verdict["stage"].as_string(), "verdict");
  EXPECT_EQ(verdict["reason"].as_string(), "channel_defer");
}

TEST(QueryTracer, EngineMintsOwnRoundWithoutAmbientDriver) {
  // Direct engine drivers (the tuner's emulator) install no ambient
  // round; with tracing on the engine mints one itself so every round
  // still gets a verdict.
  Telemetry telemetry;
  ScopedTelemetry scope(telemetry);
  telemetry.query_tracer().set_enabled(true);
  protocol::MntpEngine engine(protocol::head_to_head_params(),
                              TimePoint::epoch());
  (void)engine.on_round(at(5'000'000'000), {0.002});
  (void)engine.on_round(at(10'000'000'000), {});

  const auto traces = telemetry.query_tracer().snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].kind, "round");
  EXPECT_TRUE(traces[0].finished);
  // First sample bootstraps the filter: accepted in the regular phase
  // (head-to-head params skip warm-up).
  EXPECT_EQ(traces[0].verdict(), Reason::kAcceptedRegular);
  // A round with no surviving offsets closes as no_samples.
  EXPECT_EQ(traces[1].verdict(), Reason::kNoSamples);
}

TEST(QueryTracer, EngineOutputBitIdenticalTracingOnOrOff) {
  // The tracer only observes: every engine decision, record, and double
  // must match bit-for-bit between a traced and an untraced run.
  auto run = [](bool tracing) {
    Telemetry telemetry;
    ScopedTelemetry scope(telemetry);
    telemetry.query_tracer().set_enabled(tracing);
    protocol::MntpEngine engine(protocol::MntpParams{}, TimePoint::epoch());
    core::Rng rng(42);
    for (int i = 1; i <= 200; ++i) {
      std::vector<double> offsets;
      for (std::size_t k = rng.index(4); k-- > 0;) {
        offsets.push_back(rng.normal(0.0, 0.01));
      }
      (void)engine.on_round(at(static_cast<std::int64_t>(i) * 15'000'000'000),
                            offsets);
    }
    return engine.records();
  };

  const auto off = run(false);
  const auto on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].t, on[i].t) << "record " << i;
    EXPECT_EQ(off[i].offset_s, on[i].offset_s) << "record " << i;
    EXPECT_EQ(off[i].corrected_s, on[i].corrected_s) << "record " << i;
    EXPECT_EQ(off[i].outcome, on[i].outcome) << "record " << i;
    EXPECT_EQ(off[i].phase, on[i].phase) << "record " << i;
    EXPECT_EQ(off[i].bootstrap, on[i].bootstrap) << "record " << i;
  }
}

// ------------------------------------------------------------- sampling

TEST(QueryTracerSampling, GateIsAPureFunctionOfSeedAndId) {
  // The kept set must depend only on (seed, n, id) — never on timing,
  // interleaving, or how many times the run is repeated.
  auto kept_ids = [](std::uint64_t seed) {
    QueryTracer tracer;
    tracer.set_enabled(true);
    tracer.set_sampling({.sample_one_in_n = 4, .seed = seed});
    for (int i = 0; i < 400; ++i) {
      const QueryId id = tracer.begin(at(i), "round");
      tracer.finish(id, at(i + 1), Reason::kOk);
    }
    std::vector<QueryId> ids;
    for (const auto& t : tracer.snapshot()) ids.push_back(t.id);
    return ids;
  };
  const auto first = kept_ids(7);
  const auto again = kept_ids(7);
  EXPECT_EQ(first, again);
  EXPECT_FALSE(first.empty());
  // Roughly 1-in-4 of 400 minted ids survive the hash gate.
  EXPECT_GT(first.size(), 60u);
  EXPECT_LT(first.size(), 140u);
  // A different seed selects a different (deterministic) subset.
  EXPECT_NE(kept_ids(8), first);
}

TEST(QueryTracerSampling, ConservationAndCounters) {
  QueryTracer tracer;
  tracer.set_enabled(true);
  tracer.set_sampling({.sample_one_in_n = 3, .seed = 1});
  for (int i = 0; i < 300; ++i) {
    const QueryId id = tracer.begin(at(i), "exchange");
    tracer.finish(id, at(i + 1), Reason::kOk);
  }
  EXPECT_EQ(tracer.minted(), 300u);
  EXPECT_EQ(tracer.kept() + tracer.sampled_out() + tracer.dropped(), 300u);
  EXPECT_EQ(tracer.kept(), tracer.snapshot().size());

  // The registry export mirrors the same accounting.
  MetricsRegistry reg;
  tracer.export_counters(reg);
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "obs.query_trace.dropped");
  EXPECT_DOUBLE_EQ(snaps[0].value, 0.0);
  EXPECT_EQ(snaps[1].name, "obs.query_trace.kept");
  EXPECT_DOUBLE_EQ(snaps[1].value, static_cast<double>(tracer.kept()));
  EXPECT_EQ(snaps[2].name, "obs.query_trace.sampled_out");
  EXPECT_DOUBLE_EQ(snaps[2].value,
                   static_cast<double>(tracer.sampled_out()));
}

TEST(QueryTracerSampling, KeptIdSetIsThreadCountInvariant) {
  // The acceptance bar of the fleet-telemetry PR: the same workload
  // partitioned over 1, 4 or 16 workers keeps bit-identical id sets,
  // because the gate hashes the id and ids are minted 1..N regardless
  // of which thread begins which query.
  auto run = [](std::size_t threads) {
    QueryTracer tracer;
    tracer.set_enabled(true);
    tracer.set_sampling({.sample_one_in_n = 5, .seed = 42});
    constexpr int kQueries = 400;
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < threads; ++w) {
      pool.emplace_back([&tracer, threads, w] {
        for (int i = 0; i < kQueries / static_cast<int>(threads); ++i) {
          const QueryId id = tracer.begin(at(i), "round");
          tracer.stage(id, at(i), "gate", Reason::kOk);
          tracer.finish(id, at(i + 1), Reason::kOk);
        }
        (void)w;
      });
    }
    for (auto& t : pool) t.join();
    std::vector<QueryId> ids;
    for (const auto& t : tracer.snapshot()) ids.push_back(t.id);
    return ids;  // snapshot() is already id-sorted
  };
  const auto serial = run(1);
  const auto four = run(4);
  const auto sixteen = run(16);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, sixteen);
}

TEST(QueryTracerSampling, ReservoirCapsStoreAndConservesIds) {
  QueryTracer tracer;
  tracer.set_enabled(true);
  tracer.set_sampling({.reservoir = 16});
  for (int i = 0; i < 200; ++i) {
    const QueryId id = tracer.begin(at(i), "round");
    tracer.finish(id, at(i + 1), Reason::kOk);
  }
  EXPECT_EQ(tracer.minted(), 200u);
  EXPECT_EQ(tracer.snapshot().size(), 16u);
  EXPECT_EQ(tracer.kept(), 16u);
  EXPECT_EQ(tracer.sampled_out(), 184u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(QueryTracerSampling, ReservoirKeptSetIsArrivalOrderIndependent) {
  // Bottom-k ranks, not Algorithm R: the survivors are the k smallest
  // hash ranks of the WHOLE stream, so any arrival interleaving of the
  // same id set converges on the same kept set. Serial re-runs pin the
  // determinism half; the tuner-driven test below covers interleaving.
  auto kept = [] {
    QueryTracer tracer;
    tracer.set_enabled(true);
    tracer.set_sampling({.seed = 3, .reservoir = 8});
    for (int i = 0; i < 100; ++i) {
      const QueryId id = tracer.begin(at(i), "round");
      tracer.finish(id, at(i + 1), Reason::kOk);
    }
    std::vector<QueryId> ids;
    for (const auto& t : tracer.snapshot()) ids.push_back(t.id);
    return ids;
  };
  EXPECT_EQ(kept(), kept());
  EXPECT_EQ(kept().size(), 8u);
}

TEST(QueryTracerSampling, MetaCarriesSamplingBlockOnlyWhenActive) {
  // Byte-identity guarantee: an unsampled artifact has NO sampling key
  // (old consumers see the exact old schema); a sampled one reconciles.
  QueryTracer plain;
  plain.set_enabled(true);
  const QueryId id = plain.begin(at(1), "round");
  plain.finish(id, at(2), Reason::kOk);
  const std::string unsampled = plain.to_jsonl("run", at(3));
  EXPECT_EQ(unsampled.find("\"sampling\""), std::string::npos);

  QueryTracer tracer;
  tracer.set_enabled(true);
  tracer.set_sampling({.sample_one_in_n = 2, .seed = 9});
  for (int i = 0; i < 50; ++i) {
    const QueryId q = tracer.begin(at(i), "round");
    tracer.finish(q, at(i + 1), Reason::kOk);
  }
  const std::string jsonl = tracer.to_jsonl("run", at(100));
  const auto meta =
      core::Json::parse(jsonl.substr(0, jsonl.find('\n')));
  ASSERT_TRUE(meta.ok());
  const core::Json& s = meta.value()["sampling"];
  EXPECT_EQ(s["sample_one_in_n"].as_int(), 2);
  EXPECT_EQ(s["seed"].as_int(), 9);
  EXPECT_EQ(s["minted"].as_int(), 50);
  EXPECT_EQ(s["kept"].as_int() + s["sampled_out"].as_int(), 50);
  EXPECT_EQ(meta.value()["query_count"].as_int(), s["kept"].as_int());
}

// A "recorded" trace with deterministic variation for tuner replays.
protocol::Trace make_noisy_trace(std::size_t n) {
  protocol::Trace t;
  core::Rng rng(77);
  for (std::size_t i = 0; i < n; ++i) {
    protocol::TraceRecord r;
    r.t_s = static_cast<double>(i) * 5.0;
    r.rssi_dbm = rng.uniform(-85.0, -55.0);
    r.noise_dbm = rng.uniform(-95.0, -70.0);
    for (std::size_t j = rng.index(4); j-- > 0;) {
      r.offsets_s.push_back(rng.normal(0.0, 0.01));
    }
    t.records.push_back(std::move(r));
  }
  return t;
}

TEST(QueryTracer, ParallelTunerSearchTracesSafelyAndIdentically) {
  // Every replayed round appends to the shared bounded store from a
  // worker thread; the search result must stay bit-identical to the
  // serial run and the store must stay consistent (this test doubles as
  // the TSan exercise wired in tests/CMakeLists.txt).
  const protocol::Trace trace = make_noisy_trace(720);
  protocol::tuner::SearchSpace space;
  space.warmup_periods = {core::Duration::minutes(30)};
  space.warmup_wait_times = {core::Duration::seconds(15)};
  space.regular_wait_times = {core::Duration::minutes(5),
                              core::Duration::minutes(15)};
  space.reset_periods = {core::Duration::hours(4)};

  auto run = [&](std::size_t threads) {
    Telemetry telemetry;
    ScopedTelemetry scope(telemetry);
    telemetry.query_tracer().set_enabled(true);
    auto entries = protocol::tuner::search(trace, space, {.threads = threads});
    const auto traces = telemetry.query_tracer().snapshot();
    return std::make_pair(std::move(entries), traces.size());
  };

  const auto [serial, serial_traces] = run(1);
  const auto [parallel, parallel_traces] = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].rmse_ms, parallel[i].rmse_ms) << "entry " << i;
    EXPECT_EQ(serial[i].requests, parallel[i].requests) << "entry " << i;
  }
  // Same replays → same number of minted rounds, whatever the schedule.
  EXPECT_GT(serial_traces, 0u);
  EXPECT_EQ(serial_traces, parallel_traces);
}

}  // namespace
}  // namespace mntp::obs
