#include "core/linreg.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"

namespace mntp::core {
namespace {

TEST(LeastSquares, ExactLine) {
  const std::vector<double> xs{0, 1, 2, 3, 4};
  const std::vector<double> ys{1, 3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = least_squares(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->predict(10.0), 21.0, 1e-10);
  EXPECT_NEAR(fit->residual(10.0, 22.0), 1.0, 1e-10);
}

TEST(LeastSquares, Underdetermined) {
  EXPECT_FALSE(least_squares({}, {}).has_value());
  EXPECT_FALSE(least_squares(std::vector<double>{1.0},
                             std::vector<double>{2.0}).has_value());
  EXPECT_FALSE(least_squares(std::vector<double>{1.0, 2.0},
                             std::vector<double>{2.0}).has_value());  // mismatch
}

TEST(LeastSquares, VerticalLineRejected) {
  const std::vector<double> xs{3, 3, 3};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_FALSE(least_squares(xs, ys).has_value());
}

TEST(LeastSquares, ConstantYHasUnitR2) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{5, 5, 5, 5};
  const auto fit = least_squares(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 0.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit->r_squared, 1.0);
}

TEST(LeastSquares, NoisyLineRecoversSlope) {
  Rng rng(21);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 + 0.03 * i + rng.normal(0.0, 0.1));
  }
  const auto fit = least_squares(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 0.03, 2e-3);
  EXPECT_GT(fit->r_squared, 0.9);
}

TEST(IncrementalLinReg, MatchesBatch) {
  Rng rng(8);
  IncrementalLinReg acc;
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0, 1000);
    const double y = 3.0 - 0.2 * x + rng.normal(0, 1);
    xs.push_back(x);
    ys.push_back(y);
    acc.add(x, y);
  }
  const auto batch = least_squares(xs, ys);
  const auto inc = acc.fit();
  ASSERT_TRUE(batch && inc);
  EXPECT_NEAR(inc->slope, batch->slope, 1e-9);
  EXPECT_NEAR(inc->intercept, batch->intercept, 1e-6);
  EXPECT_NEAR(inc->r_squared, batch->r_squared, 1e-9);
}

TEST(IncrementalLinReg, RemoveUndoesAdd) {
  IncrementalLinReg acc;
  acc.add(0, 1);
  acc.add(1, 3);
  acc.add(2, 5);
  acc.add(50, 1000);  // outlier
  acc.remove(50, 1000);
  const auto fit = acc.fit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 2.0, 1e-9);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-9);
}

TEST(IncrementalLinReg, ResetClears) {
  IncrementalLinReg acc;
  acc.add(0, 1);
  acc.add(1, 2);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_FALSE(acc.fit().has_value());
}

TEST(IncrementalLinReg, RemovingToZeroResets) {
  IncrementalLinReg acc;
  acc.add(5, 5);
  acc.remove(5, 5);
  EXPECT_EQ(acc.count(), 0u);
  acc.add(100, 1);
  acc.add(101, 2);
  const auto fit = acc.fit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 1.0, 1e-9);
}

TEST(IncrementalLinReg, PredictConvenience) {
  IncrementalLinReg acc;
  EXPECT_FALSE(acc.predict(1.0).has_value());
  acc.add(0, 0);
  acc.add(2, 4);
  const auto p = acc.predict(3.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 6.0, 1e-9);
}

TEST(IncrementalLinReg, LargeXOffsetsAreStable) {
  // Nanosecond-scale x values with microsecond spacing: catastrophic
  // cancellation territory without centering.
  IncrementalLinReg acc;
  const double x0 = 3.6e12;  // ~an hour in ns
  for (int i = 0; i < 50; ++i) {
    acc.add(x0 + i * 5e9, 0.001 * i);  // slope 0.001 per 5e9 = 2e-13
  }
  const auto fit = acc.fit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 2e-13, 1e-17);
}

// Property: fitting y = a + b*x recovers (a, b) for random parameters.
class LinRegProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinRegProperty, RecoversRandomLine) {
  Rng rng(GetParam());
  const double a = rng.uniform(-100, 100);
  const double b = rng.uniform(-5, 5);
  IncrementalLinReg acc;
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform(0, 100);
    acc.add(x, a + b * x);
  }
  const auto fit = acc.fit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, b, 1e-8);
  EXPECT_NEAR(fit->intercept, a, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinRegProperty,
                         ::testing::Values(10, 20, 30, 40, 50, 60));

}  // namespace
}  // namespace mntp::core
