#include "ntp/sntp.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace mntp::ntp {
namespace {

using core::Duration;
using core::NtpTimestamp;
using core::TimePoint;

NtpTimestamp ts_at(double seconds) {
  return NtpTimestamp::from_time_point(TimePoint::epoch() +
                                       Duration::from_seconds(seconds));
}

TEST(SntpExchange, SymmetricPathPerfectClocksGiveZeroOffset) {
  // Client perfect, both one-way delays 50 ms.
  const SntpExchange x{
      .t1 = ts_at(0.000),
      .t2 = ts_at(0.050),
      .t3 = ts_at(0.051),
      .t4 = ts_at(0.101),
  };
  EXPECT_NEAR(x.offset().to_millis(), 0.0, 0.01);
  EXPECT_NEAR(x.delay().to_millis(), 100.0, 0.01);
}

TEST(SntpExchange, ClientBehindYieldsPositiveOffset) {
  // Client clock 200 ms behind true time; symmetric 10 ms paths.
  // T1/T4 are stamped 200 ms early relative to server time.
  const SntpExchange x{
      .t1 = ts_at(0.000 - 0.200),
      .t2 = ts_at(0.010),
      .t3 = ts_at(0.011),
      .t4 = ts_at(0.021 - 0.200),
  };
  EXPECT_NEAR(x.offset().to_millis(), 200.0, 0.01);
  EXPECT_NEAR(x.delay().to_millis(), 20.0, 0.01);
}

TEST(SntpExchange, AsymmetryBiasesOffsetByHalf) {
  // Perfect clocks, uplink 300 ms, downlink 20 ms.
  const SntpExchange x{
      .t1 = ts_at(0.000),
      .t2 = ts_at(0.300),
      .t3 = ts_at(0.301),
      .t4 = ts_at(0.321),
  };
  EXPECT_NEAR(x.offset().to_millis(), (300.0 - 20.0) / 2.0, 0.01);
  EXPECT_NEAR(x.delay().to_millis(), 320.0, 0.01);
}

TEST(SntpExchangeProperty, OffsetFormulaHoldsForRandomScenarios) {
  core::Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double clock_err = rng.uniform(-0.5, 0.5);   // client - true
    const double up = rng.uniform(0.001, 0.8);
    const double down = rng.uniform(0.001, 0.8);
    const double proc = rng.uniform(0.0, 0.01);
    const double t_send = rng.uniform(0.0, 100.0);
    const SntpExchange x{
        .t1 = ts_at(t_send + clock_err),
        .t2 = ts_at(t_send + up),
        .t3 = ts_at(t_send + up + proc),
        .t4 = ts_at(t_send + up + proc + down + clock_err),
    };
    // offset = (server - client) = -clock_err + (up - down)/2.
    ASSERT_NEAR(x.offset().to_seconds(), -clock_err + (up - down) / 2.0, 1e-6);
    ASSERT_NEAR(x.delay().to_seconds(), up + down, 1e-6);
  }
}

NtpPacket good_reply(NtpTimestamp origin) {
  NtpPacket p;
  p.mode = Mode::kServer;
  p.stratum = 2;
  p.leap = LeapIndicator::kNoWarning;
  p.origin_ts = origin;
  p.receive_ts = ts_at(1.0);
  p.transmit_ts = ts_at(1.001);
  return p;
}

TEST(ValidateSntpResponse, AcceptsGoodReply) {
  const auto origin = ts_at(0.5);
  EXPECT_TRUE(validate_sntp_response(good_reply(origin), origin).ok());
}

TEST(ValidateSntpResponse, RejectsWrongMode) {
  const auto origin = ts_at(0.5);
  NtpPacket p = good_reply(origin);
  p.mode = Mode::kClient;
  const auto s = validate_sntp_response(p, origin);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, core::Error::Code::kMalformedPacket);
}

TEST(ValidateSntpResponse, RejectsKissOfDeath) {
  const auto origin = ts_at(0.5);
  NtpPacket p = good_reply(origin);
  p.stratum = 0;
  const auto s = validate_sntp_response(p, origin);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, core::Error::Code::kKissOfDeath);
}

TEST(ValidateSntpResponse, RejectsInvalidStratum) {
  const auto origin = ts_at(0.5);
  NtpPacket p = good_reply(origin);
  p.stratum = 16;
  EXPECT_FALSE(validate_sntp_response(p, origin).ok());
}

TEST(ValidateSntpResponse, RejectsUnsynchronizedLeap) {
  const auto origin = ts_at(0.5);
  NtpPacket p = good_reply(origin);
  p.leap = LeapIndicator::kUnsynchronized;
  EXPECT_FALSE(validate_sntp_response(p, origin).ok());
}

TEST(ValidateSntpResponse, RejectsZeroTransmit) {
  const auto origin = ts_at(0.5);
  NtpPacket p = good_reply(origin);
  p.transmit_ts = NtpTimestamp::unset();
  EXPECT_FALSE(validate_sntp_response(p, origin).ok());
}

TEST(ValidateSntpResponse, RejectsBogusOrigin) {
  const auto origin = ts_at(0.5);
  NtpPacket p = good_reply(ts_at(0.6));  // echoes the wrong origin
  EXPECT_FALSE(validate_sntp_response(p, origin).ok());
}

TEST(ValidateSntpResponse, AcceptsSymmetricPassive) {
  const auto origin = ts_at(0.5);
  NtpPacket p = good_reply(origin);
  p.mode = Mode::kSymmetricPassive;
  EXPECT_TRUE(validate_sntp_response(p, origin).ok());
}

}  // namespace
}  // namespace mntp::ntp
