// Leap-second robustness scenarios.
//
// The paper's related work cites Veitch & Vijayalayan's study of the 2015
// leap second, where public NTP infrastructure stepped en masse and
// client behaviour diverged wildly. We reproduce the event: every pool
// server steps its clock by -1 s simultaneously, and each client strategy
// reacts according to its design:
//   * SNTP with clock updates follows at the very next poll (blind trust
//     cuts both ways — agile here, fragile against ordinary spikes);
//   * full NTP hesitates through its stepout guard, then steps;
//   * MNTP's trend filter treats the coherent 1 s shift as a stream of
//     outliers and starves until its reset period re-opens the warm-up —
//     the robustness/agility trade-off made explicit.
#include <gtest/gtest.h>

#include <cmath>

#include "mntp/mntp_client.h"
#include "ntp/sntp_client.h"
#include "ntp/testbed.h"

namespace mntp {
namespace {

using core::Duration;
using core::TimePoint;

constexpr double kLeapStep = -1.0;  // leap insertion: servers repeat a second

TEST(LeapSecond, SntpWithUpdatesFollowsImmediately) {
  ntp::TestbedConfig config;
  config.seed = 600;
  config.wireless = false;
  config.monitor_active = false;
  config.ntp_correction = false;
  ntp::Testbed bed(config);
  ntp::SntpClientPolicy policy;
  policy.poll_interval = Duration::seconds(64);
  policy.update_clock = true;
  ntp::SntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                         bed.last_hop_up(), bed.last_hop_down(), policy);
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30));
  bed.pool().adjust_all_clocks(kLeapStep);
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(33));
  // Within two polls the client has stepped onto the new timescale.
  EXPECT_NEAR(bed.true_clock_offset_ms(), kLeapStep * 1e3, 30.0);
}

TEST(LeapSecond, NtpStepsAfterStepoutGuard) {
  ntp::TestbedConfig config;
  config.seed = 601;
  config.wireless = false;
  config.monitor_active = false;
  config.ntp_correction = true;
  ntp::Testbed bed(config);
  bed.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30));
  const auto steps_before = bed.ntp_client()->steps();
  bed.pool().adjust_all_clocks(kLeapStep);

  // Immediately after the event the guard is still holding: the clock has
  // not yet jumped a full second within the first couple of rounds.
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30) +
                      Duration::seconds(40));
  EXPECT_GT(bed.true_clock_offset_ms(), -800.0);

  // The persistent 1 s offset then satisfies the stepout and the clock
  // steps onto the new timescale. The 8-stage min-delay filter can keep
  // nominating a pre-leap sample for several rounds, so give it time.
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(45));
  EXPECT_GT(bed.ntp_client()->steps(), steps_before);
  EXPECT_NEAR(bed.true_clock_offset_ms(), kLeapStep * 1e3, 50.0);
}

TEST(LeapSecond, MntpFilterRejectsTheShiftUntilReset) {
  ntp::TestbedConfig config;
  config.seed = 602;
  config.wireless = false;  // clean channel isolates the filter behaviour
  config.monitor_active = false;
  config.ntp_correction = false;
  ntp::Testbed bed(config);
  protocol::MntpParams params;
  params.warmup_period = Duration::minutes(5);
  params.warmup_wait_time = Duration::seconds(10);
  params.regular_wait_time = Duration::seconds(30);
  params.reset_period = Duration::minutes(60);
  params.min_warmup_samples = 10;
  protocol::MntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                              bed.channel(), params, bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30));
  const std::size_t accepted_before =
      client.engine().accepted_offsets_ms().size();
  bed.pool().adjust_all_clocks(kLeapStep);

  // For the next stretch every sample sits 1 s off the trend: the filter
  // rejects them all (the coherent world-step is indistinguishable from
  // a run of spikes to a trend-based filter).
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(55));
  const auto& engine = client.engine();
  EXPECT_LE(engine.accepted_offsets_ms().size(), accepted_before + 2);
  EXPECT_GT(engine.rejected_offsets_ms().size(), 10u);

  // After the reset period the warm-up re-learns the new timescale and
  // samples flow again.
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(110));
  EXPECT_GT(engine.accepted_offsets_ms().size(), accepted_before + 10);
  EXPECT_GE(engine.resets(), 1u);
  // The re-learned trend sits near the new (-1 s) offset.
  const auto accepted = engine.accepted_offsets_ms();
  EXPECT_NEAR(accepted.back(), kLeapStep * 1e3, 60.0);
}

}  // namespace
}  // namespace mntp
