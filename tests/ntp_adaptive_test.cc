// Kiss-of-death handling (RFC 4330 §10) and ntpd-style adaptive polling.
#include <gtest/gtest.h>

#include "ntp/sntp_client.h"
#include "ntp/testbed.h"

namespace mntp::ntp {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TEST(KissOfDeath, SntpClientBacksOff) {
  Rng rng(500);
  sim::Simulation sim;
  sim::DisciplinedClock clock(sim::OscillatorParams{}, rng.fork());
  // A pool of one server that answers everything with RATE.
  PoolParams pp;
  pp.server_count = 1;
  ServerPool pool(pp, rng.fork());
  // Rebuild member 0 as a KoD server is not exposed; instead query a
  // standalone endpoint. Easier: use a dedicated pool-free setup.
  NtpServerParams kod_params;
  kod_params.kiss_of_death = true;
  NtpServer kod("kod", kod_params, rng.fork());
  net::WiredLink up(net::WiredLinkParams::lan(), rng.fork());
  net::WiredLink down(net::WiredLinkParams::lan(), rng.fork());

  // Drive the client against the KoD server by pointing a one-member
  // pool's endpoint at it: construct endpoints manually via QueryEngine
  // is simpler, but the backoff lives in SntpClient, so monkey with the
  // pool: replace its member's behaviour using the same wire path.
  // Instead, run the client against the honest pool but intercept via a
  // custom QueryOptions is not possible — so test the policy loop with a
  // pool whose only member is... honest. Hence: directly exercise the
  // QueryEngine + manual loop below.
  QueryEngine engine(sim, clock);
  ServerEndpoint ep;
  ep.server = &kod;
  ep.up.append(up);
  ep.down.append(down);
  int kod_count = 0;
  engine.query(ep, QueryOptions{}, [&](core::Result<SntpSample> r) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, core::Error::Code::kKissOfDeath);
    ++kod_count;
  });
  sim.run();
  EXPECT_EQ(kod_count, 1);
}

TEST(KissOfDeath, PolicyLengthensPollInterval) {
  // A pool whose single member rate-limits everything.
  Rng rng(501);
  sim::Simulation sim;
  sim::DisciplinedClock clock(sim::OscillatorParams{}, rng.fork());
  PoolParams pp;
  pp.server_count = 1;
  pp.kiss_of_death_count = 1;
  ServerPool pool(pp, rng.fork());
  SntpClientPolicy policy;
  policy.poll_interval = Duration::seconds(8);
  policy.kod_backoff_factor = 2.0;
  policy.max_poll_interval = Duration::seconds(64);
  SntpClient client(sim, clock, pool, nullptr, nullptr, policy);
  client.start();
  sim.run_until(TimePoint::epoch() + Duration::minutes(20));
  // Each KoD doubles the interval until the cap: 8 -> 16 -> 32 -> 64.
  EXPECT_GE(client.kod_backoffs(), 3u);
  EXPECT_EQ(client.current_poll_interval(), Duration::seconds(64));
  EXPECT_TRUE(client.samples().empty());
  // The backoff means far fewer polls than the base cadence would issue.
  EXPECT_LT(client.polls(), 1200u / 8u);
}

TEST(KissOfDeath, IgnoredWhenPolicyDisabled) {
  Rng rng(505);
  sim::Simulation sim;
  sim::DisciplinedClock clock(sim::OscillatorParams{}, rng.fork());
  PoolParams pp;
  pp.server_count = 1;
  pp.kiss_of_death_count = 1;
  ServerPool pool(pp, rng.fork());
  SntpClientPolicy policy;
  policy.poll_interval = Duration::seconds(8);
  policy.honor_kiss_of_death = false;
  SntpClient client(sim, clock, pool, nullptr, nullptr, policy);
  client.start();
  sim.run_until(TimePoint::epoch() + Duration::minutes(4));
  EXPECT_EQ(client.kod_backoffs(), 0u);
  EXPECT_EQ(client.current_poll_interval(), Duration::seconds(8));
  EXPECT_GE(client.polls(), 29u);  // kept hammering, as bad clients do
}

TEST(AdaptivePoll, LengthensWhenTrackingWell) {
  TestbedConfig config;
  config.seed = 502;
  config.wireless = false;
  config.monitor_active = false;
  config.ntp.adaptive_poll = true;
  config.ntp.max_poll_interval = Duration::seconds(256);
  Testbed bed(config);
  bed.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(2));
  // On a clean wired path the tracking is tight: the poll interval must
  // have grown well beyond the 16 s base.
  EXPECT_GE(bed.ntp_client()->current_poll_interval(), Duration::seconds(64));
  // And the clock is still fine.
  EXPECT_LT(std::abs(bed.true_clock_offset_ms()), 10.0);
}

TEST(AdaptivePoll, ReducesTrafficVersusFixed) {
  auto updates = [](bool adaptive) {
    TestbedConfig config;
    config.seed = 503;
    config.wireless = false;
    config.monitor_active = false;
    config.ntp.adaptive_poll = adaptive;
    Testbed bed(config);
    bed.start();
    bed.sim().run_until(TimePoint::epoch() + Duration::hours(4));
    return bed.ntp_client()->updates();
  };
  EXPECT_LT(updates(true), updates(false) / 2);
}

TEST(AdaptivePoll, DisabledByDefault) {
  TestbedConfig config;
  config.seed = 504;
  config.wireless = false;
  config.monitor_active = false;
  Testbed bed(config);
  bed.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(1));
  EXPECT_EQ(bed.ntp_client()->current_poll_interval(), Duration::seconds(16));
}

}  // namespace
}  // namespace mntp::ntp
