#include "net/wireless_channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/stats.h"
#include "mntp/params.h"

namespace mntp::net {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

TEST(WirelessChannel, DeterministicPerSeed) {
  WirelessChannel a(WirelessChannelParams{}, Rng(42));
  WirelessChannel b(WirelessChannelParams{}, Rng(42));
  for (int i = 1; i <= 100; ++i) {
    const auto ra = a.transmit_dir(at_s(i), 76, true);
    const auto rb = b.transmit_dir(at_s(i), 76, true);
    ASSERT_EQ(ra.delivered, rb.delivered);
    ASSERT_EQ(ra.delay, rb.delay);
    const auto ha = a.observe_hints(at_s(i));
    const auto hb = b.observe_hints(at_s(i));
    ASSERT_DOUBLE_EQ(ha.rssi.value(), hb.rssi.value());
  }
}

TEST(WirelessChannel, DropConsumesNoBackoffDraw) {
  // Regression: the final failed attempt used to draw an exponential
  // backoff for a retry that never happens, silently shifting the RNG
  // stream of every event after a drop. With max_retries = 0 and a
  // guaranteed collision, a drop must consume exactly as many draws as
  // a clean first-attempt delivery (one bernoulli), so two channels
  // sharing a seed stay in lockstep afterwards.
  WirelessChannelParams p;
  p.max_retries = 0;
  p.collision_at_full_load = 1.0;
  WirelessChannel drop_ch(p, Rng(21));
  WirelessChannel deliver_ch(p, Rng(21));
  drop_ch.set_utilization(1.0);  // p_fail clamps to 1: certain drop
  deliver_ch.set_utilization(0.0);
  ASSERT_FALSE(drop_ch.transmit_dir(at_s(1), 76, true).delivered);
  ASSERT_TRUE(deliver_ch.transmit_dir(at_s(1), 76, true).delivered);
  // Equalize the deterministic load-dependent noise term, then compare
  // hint streams: any dead draw on the drop path desynchronizes them.
  drop_ch.set_utilization(0.0);
  for (int i = 2; i <= 20; ++i) {
    const auto ha = drop_ch.observe_hints(at_s(i));
    const auto hb = deliver_ch.observe_hints(at_s(i));
    ASSERT_DOUBLE_EQ(ha.rssi.value(), hb.rssi.value());
    ASSERT_DOUBLE_EQ(ha.noise.value(), hb.noise.value());
  }
}

TEST(WirelessChannel, TimeBackwardsThrows) {
  WirelessChannel c(WirelessChannelParams{}, Rng(1));
  (void)c.observe_hints(at_s(10));
  EXPECT_THROW((void)c.observe_hints(at_s(5)), std::logic_error);
}

TEST(WirelessChannel, RejectsBadParams) {
  WirelessChannelParams p;
  p.tick = Duration::zero();
  EXPECT_THROW(WirelessChannel(p, Rng(1)), std::invalid_argument);
  WirelessChannelParams q;
  q.max_retries = -1;
  EXPECT_THROW(WirelessChannel(q, Rng(1)), std::invalid_argument);
}

TEST(WirelessChannel, BadStateOccupancyMatchesSojournRatio) {
  WirelessChannelParams p;
  p.mean_good_duration = Duration::seconds(30);
  p.mean_bad_duration = Duration::seconds(10);
  WirelessChannel c(p, Rng(7));
  int bad = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (c.in_bad_state(at_s(i * 0.5))) ++bad;
  }
  EXPECT_NEAR(static_cast<double>(bad) / n, 0.25, 0.05);
}

TEST(WirelessChannel, BadStateDegradesSnr) {
  WirelessChannel c(WirelessChannelParams{}, Rng(8));
  core::RunningStats good_snr, bad_snr;
  for (int i = 0; i < 20000; ++i) {
    const TimePoint t = at_s(i * 0.5);
    const double snr = (c.true_rssi(t) - c.true_noise(t)).value();
    (c.in_bad_state(t) ? bad_snr : good_snr).add(snr);
  }
  ASSERT_GT(good_snr.count(), 100u);
  ASSERT_GT(bad_snr.count(), 100u);
  // Bad state loses bad_extra_fade + bad_noise_rise = 26 dB nominal.
  EXPECT_GT(good_snr.mean() - bad_snr.mean(), 20.0);
}

TEST(WirelessChannel, TxPowerMovesRssi) {
  WirelessChannelParams p;
  p.shadowing_sigma_db = 0.0;
  p.fast_fading_sigma_db = 0.0;
  WirelessChannel c(p, Rng(9));
  const double before = c.true_rssi(at_s(1)).value();
  c.set_tx_power(c.tx_power() + core::Decibels{5.0});
  const double after = c.true_rssi(at_s(1.01)).value();
  EXPECT_NEAR(after - before, 5.0, 1e-9);
}

TEST(WirelessChannel, UtilizationRaisesNoiseAndDelay) {
  WirelessChannelParams p;
  p.noise_sigma_db = 0.0;
  WirelessChannel c(p, Rng(10));
  c.set_utilization(0.0);
  const double noise_idle = c.true_noise(at_s(1)).value();
  core::RunningStats idle_delay;
  for (int i = 0; i < 2000; ++i) {
    const auto r = c.transmit_dir(at_s(1 + i * 0.001), 76, true);
    if (r.delivered) idle_delay.add(r.delay.to_millis());
  }
  c.set_utilization(0.9);
  const double noise_busy = c.true_noise(at_s(4)).value();
  core::RunningStats busy_delay;
  for (int i = 0; i < 2000; ++i) {
    const auto r = c.transmit_dir(at_s(4 + i * 0.001), 76, true);
    if (r.delivered) busy_delay.add(r.delay.to_millis());
  }
  EXPECT_NEAR(noise_busy - noise_idle,
              p.load_noise_rise.value() * 0.9, 1.0);
  EXPECT_GT(busy_delay.mean(), idle_delay.mean());
}

TEST(WirelessChannel, UtilizationClamped) {
  WirelessChannel c(WirelessChannelParams{}, Rng(11));
  c.set_utilization(7.0);
  EXPECT_DOUBLE_EQ(c.utilization(), 1.0);
  c.set_utilization(-3.0);
  EXPECT_DOUBLE_EQ(c.utilization(), 0.0);
}

TEST(WirelessChannel, UplinkSlowerOnAverageThanDownlink) {
  WirelessChannel c(WirelessChannelParams{}, Rng(12));
  c.set_utilization(0.7);
  core::RunningStats up, down;
  for (int i = 0; i < 40000; ++i) {
    const TimePoint t = at_s(i * 0.25);
    const auto ru = c.transmit_dir(t, 76, true);
    if (ru.delivered) up.add(ru.delay.to_millis());
    const auto rd = c.transmit_dir(t, 76, false);
    if (rd.delivered) down.add(rd.delay.to_millis());
  }
  EXPECT_GT(up.mean(), down.mean());
}

TEST(WirelessChannel, LossRateHigherInBadState) {
  WirelessChannel c(WirelessChannelParams{}, Rng(13));
  std::size_t good_n = 0, good_lost = 0, bad_n = 0, bad_lost = 0;
  for (int i = 0; i < 40000; ++i) {
    const TimePoint t = at_s(i * 0.25);
    const bool bad = c.in_bad_state(t);
    const auto r = c.transmit_dir(t, 76, true);
    if (bad) {
      ++bad_n;
      if (!r.delivered) ++bad_lost;
    } else {
      ++good_n;
      if (!r.delivered) ++good_lost;
    }
  }
  const double good_rate = static_cast<double>(good_lost) / good_n;
  const double bad_rate = static_cast<double>(bad_lost) / bad_n;
  EXPECT_LT(good_rate, 0.05);
  EXPECT_GT(bad_rate, 0.1);
  EXPECT_GT(bad_rate, good_rate * 5);
}

TEST(WirelessChannel, HintsGateCorrelatesWithChannelQuality) {
  // The crux of MNTP: instants passing the hint thresholds must offer
  // materially better delivery than instants failing them.
  WirelessChannel c(WirelessChannelParams{}, Rng(14));
  const protocol::HintThresholds thresholds;
  core::RunningStats pass_delay, fail_delay;
  std::size_t pass_lost = 0, pass_n = 0, fail_lost = 0, fail_n = 0;
  for (int i = 0; i < 40000; ++i) {
    const TimePoint t = at_s(i * 0.25);
    const bool favorable = thresholds.favorable(c.observe_hints(t));
    const auto r = c.transmit_dir(t, 76, true);
    if (favorable) {
      ++pass_n;
      if (r.delivered) pass_delay.add(r.delay.to_millis());
      else ++pass_lost;
    } else {
      ++fail_n;
      if (r.delivered) fail_delay.add(r.delay.to_millis());
      else ++fail_lost;
    }
  }
  ASSERT_GT(pass_n, 1000u);
  ASSERT_GT(fail_n, 1000u);
  EXPECT_LT(static_cast<double>(pass_lost) / pass_n,
            static_cast<double>(fail_lost) / fail_n);
  EXPECT_LT(pass_delay.mean(), fail_delay.mean());
}

TEST(WirelessChannel, HintObservationTracksTrueState) {
  WirelessChannel c(WirelessChannelParams{}, Rng(15));
  core::RunningStats error;
  for (int i = 0; i < 5000; ++i) {
    const TimePoint t = at_s(i * 0.5);
    const auto h = c.observe_hints(t);
    error.add(h.rssi.value() - c.true_rssi(t).value());
  }
  EXPECT_NEAR(error.mean(), 0.0, 0.1);
  EXPECT_NEAR(error.stddev(), WirelessChannelParams{}.fast_fading_sigma_db, 0.1);
}

TEST(WirelessChannel, SnrLutMatchesExactLogisticWithinBound) {
  // The LUT's documented contract: |interpolated - exact| <= 1e-5 across
  // the whole SNR axis (clamped tails included), for any positive slope.
  for (const double slope : {0.5, 2.2, 6.0}) {
    WirelessChannelParams p;
    p.snr_slope_db = slope;
    p.use_snr_lut = true;
    WirelessChannel lut(p, Rng(30));
    double worst = 0.0;
    for (double snr = p.snr50_db - 30.0 * slope; snr <= p.snr50_db + 30.0 * slope;
         snr += slope / 100.0) {
      const double exact =
          1.0 / (1.0 + std::exp((snr - p.snr50_db) / p.snr_slope_db));
      worst = std::max(worst, std::fabs(lut.snr_failure_probability(snr) - exact));
    }
    EXPECT_LE(worst, 1e-5) << "slope " << slope;
  }
}

TEST(WirelessChannel, SnrLutOffByDefaultUsesExactLogistic) {
  WirelessChannel c(WirelessChannelParams{}, Rng(31));
  const WirelessChannelParams p;
  const double snr = p.snr50_db + 1.7;
  EXPECT_DOUBLE_EQ(c.snr_failure_probability(snr),
                   1.0 / (1.0 + std::exp((snr - p.snr50_db) / p.snr_slope_db)));
}

TEST(WirelessChannel, CoarseOuAdvanceMatchesStationaryStatistics) {
  // The closed-form advance is the exact OU transition, so the shadowing
  // process it produces must have the same stationary law the tick
  // integrator targets: mean 0, stddev ~= shadowing_sigma_db, and the
  // configured relaxation time. Pin the channel in the good state so
  // true_rssi exposes the shadowing term directly.
  WirelessChannelParams p;
  p.coarse_ou_advance = true;
  p.mean_good_duration = Duration::seconds(1e9);
  WirelessChannel c(p, Rng(32));
  const double baseline = p.default_tx_power.value() - p.path_loss.value();
  core::RunningStats shadow;
  double lag_acc = 0.0;
  double prev = 0.0;
  const double step_s = 5.0;
  const int n = 40000;
  for (int i = 1; i <= n; ++i) {
    const double x = c.true_rssi(at_s(i * step_s)).value() - baseline;
    shadow.add(x);
    if (i > 1) lag_acc += prev * x;
    prev = x;
  }
  EXPECT_NEAR(shadow.mean(), 0.0, 0.1);
  EXPECT_NEAR(shadow.stddev(), p.shadowing_sigma_db, 0.1);
  // Lag-1 autocorrelation at a 5 s step of a tau = 25 s OU process is
  // e^(-5/25) ~= 0.819.
  const double lag1 = lag_acc / (n - 1) / shadow.variance();
  EXPECT_NEAR(lag1, std::exp(-step_s / p.shadowing_tau_s), 0.02);
}

TEST(WirelessChannel, CoarseOuAdvanceIsDeterministicPerSeed) {
  WirelessChannelParams p;
  p.coarse_ou_advance = true;
  p.use_snr_lut = true;
  WirelessChannel a(p, Rng(33));
  WirelessChannel b(p, Rng(33));
  for (int i = 1; i <= 200; ++i) {
    const auto ra = a.transmit_dir(at_s(i * 7.0), 76, i % 2 == 0);
    const auto rb = b.transmit_dir(at_s(i * 7.0), 76, i % 2 == 0);
    ASSERT_EQ(ra.delivered, rb.delivered);
    ASSERT_EQ(ra.delay, rb.delay);
  }
}

}  // namespace
}  // namespace mntp::net
