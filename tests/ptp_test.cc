// PTP substrate tests: wire format, exchange math, servo, and the full
// master/slave synchronization loop on a LAN.
#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.h"
#include "net/wired_link.h"
#include "ptp/clock_servo.h"
#include "ptp/message.h"
#include "ptp/ptp_nodes.h"
#include "sim/simulation.h"

namespace mntp::ptp {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

TEST(PtpTimestamp, RoundTripsThroughTimePoint) {
  const TimePoint t = at_s(123.456789123);
  const PtpTimestamp ts = PtpTimestamp::from_time_point(t);
  EXPECT_EQ(ts.to_time_point(), t);
  EXPECT_LT(ts.nanoseconds, 1'000'000'000u);
}

TEST(PtpTimestamp, DifferenceSpansSecondBoundaries) {
  const auto a = PtpTimestamp::from_time_point(at_s(10.9));
  const auto b = PtpTimestamp::from_time_point(at_s(11.1));
  EXPECT_NEAR((b - a).to_millis(), 200.0, 1e-6);
  EXPECT_NEAR((a - b).to_millis(), -200.0, 1e-6);
}

TEST(PtpMessage, SerializeParseRoundTrip) {
  PtpMessage m;
  m.type = MessageType::kFollowUp;
  m.domain = 3;
  m.clock_identity = 0x0123456789ABCDEFull;
  m.port_number = 7;
  m.sequence_id = 0xBEEF;
  m.log_message_interval = -2;
  m.timestamp = PtpTimestamp{.seconds = 0x0000ABCD1234ull, .nanoseconds = 999'999'999};
  const auto parsed = PtpMessage::parse(m.to_bytes());
  ASSERT_TRUE(parsed.ok());
  const PtpMessage& q = parsed.value();
  EXPECT_EQ(q.type, m.type);
  EXPECT_EQ(q.domain, m.domain);
  EXPECT_EQ(q.clock_identity, m.clock_identity);
  EXPECT_EQ(q.port_number, m.port_number);
  EXPECT_EQ(q.sequence_id, m.sequence_id);
  EXPECT_EQ(q.log_message_interval, m.log_message_interval);
  EXPECT_EQ(q.timestamp, m.timestamp);
}

TEST(PtpMessage, ParseRejectsBadInput) {
  std::vector<std::uint8_t> short_wire(20, 0);
  EXPECT_FALSE(PtpMessage::parse(short_wire).ok());

  PtpMessage m;
  auto wire = m.to_bytes();
  wire[1] = 1;  // PTPv1
  EXPECT_FALSE(PtpMessage::parse(wire).ok());

  wire = m.to_bytes();
  wire[0] = 0x05;  // unsupported type
  EXPECT_FALSE(PtpMessage::parse(wire).ok());

  wire = m.to_bytes();
  wire[40] = 0x40;  // nanoseconds > 1e9
  EXPECT_FALSE(PtpMessage::parse(wire).ok());
}

TEST(PtpExchange, OffsetAndDelayFormulas) {
  // Master perfect; slave +5 ms ahead; symmetric 2 ms path, 1 ms between
  // Sync receipt and Delay_Req issue.
  const auto T = [](double s) { return PtpTimestamp::from_time_point(at_s(s)); };
  const PtpExchange x{
      .t1 = T(10.000),          // master Sync departure (master time)
      .t2 = T(10.002 + 0.005),  // slave Sync arrival (slave time, +5 ms)
      .t3 = T(10.003 + 0.005),  // slave Delay_Req departure (slave time)
      .t4 = T(10.005),          // master Delay_Req arrival (master time)
  };
  EXPECT_NEAR(x.offset_from_master().to_millis(), 5.0, 1e-6);
  EXPECT_NEAR(x.mean_path_delay().to_millis(), 2.0, 1e-6);
}

TEST(ClockServo, StepsLargeOffsets) {
  Rng rng(1);
  sim::DisciplinedClock clock(sim::OscillatorParams{.initial_offset_s = 0.5},
                              rng.fork());
  ClockServo servo(clock);
  (void)clock.offset_at(at_s(1));
  servo.update(at_s(1), Duration::milliseconds(500), Duration::seconds(1));
  EXPECT_EQ(servo.steps(), 1u);
  EXPECT_NEAR(clock.offset_at(at_s(1.01)), 0.0, 1e-6);
}

TEST(ClockServo, SlewsSmallOffsetsAndLearnsFrequency) {
  Rng rng(2);
  sim::DisciplinedClock clock(sim::OscillatorParams{.constant_skew_ppm = 50.0},
                              rng.fork());
  ClockServo servo(clock);
  // Feed the servo the true offset once a second for two minutes.
  for (int i = 1; i <= 120; ++i) {
    const TimePoint t = at_s(i);
    const Duration offset = Duration::from_seconds(clock.offset_at(t));
    servo.update(t, offset, Duration::seconds(1));
  }
  // The frequency integral should have learned roughly -50 ppm.
  EXPECT_NEAR(servo.frequency_ppm(), -50.0, 10.0);
  EXPECT_LT(std::abs(clock.offset_at(at_s(121))), 1e-4);
}

struct LanFixture {
  LanFixture(double slave_offset_s, double slave_skew_ppm,
             double timestamp_noise_s = 100e-9)
      : rng(33),
        clock(sim::OscillatorParams{.initial_offset_s = slave_offset_s,
                                    .constant_skew_ppm = slave_skew_ppm},
              rng.fork()),
        m2s(net::WiredLinkParams::lan(), rng.fork()),
        s2m(net::WiredLinkParams::lan(), rng.fork()),
        master(sim, PtpMasterParams{.timestamp_noise_s = timestamp_noise_s},
               rng.fork()),
        slave(sim, clock,
              PtpSlaveParams{.timestamp_noise_s = timestamp_noise_s, .servo = {}},
              rng.fork()) {
    master.attach(slave, net::LinkPath({&m2s}), net::LinkPath({&s2m}));
  }

  Rng rng;
  sim::Simulation sim;
  sim::DisciplinedClock clock;
  net::WiredLink m2s;
  net::WiredLink s2m;
  PtpMaster master;
  PtpSlave slave;
};

TEST(PtpLan, ExchangesComplete) {
  LanFixture f(0.0, 0.0);
  f.master.start();
  f.sim.run_until(at_s(60));
  EXPECT_GE(f.master.syncs_sent(), 59u);
  // Tiny LAN loss means nearly all exchanges complete.
  EXPECT_GT(f.slave.exchanges_completed(), 50u);
  EXPECT_EQ(f.slave.malformed_dropped(), 0u);
}

TEST(PtpLan, SynchronizesColdSlaveToSubMillisecond) {
  LanFixture f(/*offset*/ 0.25, /*skew*/ 30.0);
  f.master.start();
  f.sim.run_until(at_s(120));
  // After two minutes of 1 Hz servo updates the slave clock tracks the
  // master well below a millisecond.
  core::RunningStats tail;
  for (int i = 0; i < 60; ++i) {
    f.sim.run_until(at_s(121 + i));
    tail.add(std::abs(f.clock.offset_at(f.sim.now())) * 1e3);
  }
  EXPECT_LT(tail.mean(), 0.5);  // ms
}

TEST(PtpLan, HardwareTimestampingBeatsSoftware) {
  auto steady_error = [](double noise_s) {
    LanFixture f(0.01, 5.0, noise_s);
    f.master.start();
    f.sim.run_until(at_s(180));
    core::RunningStats tail;
    for (int i = 0; i < 120; ++i) {
      f.sim.run_until(at_s(181 + i));
      tail.add(std::abs(f.clock.offset_at(f.sim.now())));
    }
    return tail.mean();
  };
  const double hw = steady_error(100e-9);
  const double sw = steady_error(50e-6);
  EXPECT_LT(hw, sw);
}

TEST(PtpLan, MeasuredOffsetsTrackTrueOffsetInitially) {
  LanFixture f(0.005, 0.0);  // slave 5 ms ahead
  f.master.start();
  f.sim.run_until(at_s(3));
  ASSERT_FALSE(f.slave.measured_offsets_ms().empty());
  // First measurement sees roughly the +5 ms error (before the servo
  // corrects it away).
  EXPECT_NEAR(f.slave.measured_offsets_ms().front(), 5.0, 1.5);
}

}  // namespace
}  // namespace mntp::ptp
