#include "net/cellular.h"

#include <gtest/gtest.h>

#include "core/stats.h"

namespace mntp::net {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

TEST(Cellular, UplinkMuchSlowerThanDownlink) {
  CellularNetwork net(CellularParams{}, Rng(1));
  core::RunningStats up, down;
  for (int i = 0; i < 10000; ++i) {
    const TimePoint t = at_s(i * 0.5);
    const auto ru = net.uplink().transmit(t, 76);
    if (ru.delivered) up.add(ru.delay.to_millis());
    const auto rd = net.downlink().transmit(t, 76);
    if (rd.delivered) down.add(rd.delay.to_millis());
  }
  // The asymmetry is what produces the paper's ~192 ms mean SNTP offset:
  // (up - down) / 2 must land in the low hundreds of ms.
  const double asym_offset = (up.mean() - down.mean()) / 2.0;
  EXPECT_GT(asym_offset, 120.0);
  EXPECT_LT(asym_offset, 280.0);
}

TEST(Cellular, DelaysRespectBases) {
  CellularParams p;
  CellularNetwork net(p, Rng(2));
  for (int i = 0; i < 500; ++i) {
    const TimePoint t = at_s(i * 1.0);
    const auto ru = net.uplink().transmit(t, 76);
    if (ru.delivered) {
      ASSERT_GE(ru.delay, p.uplink_base);
    }
    const auto rd = net.downlink().transmit(t, 76);
    if (rd.delivered) {
      ASSERT_GE(rd.delay, p.downlink_base);
    }
  }
}

TEST(Cellular, OneWayDelayCapped) {
  CellularParams p;
  p.congested_uplink_factor = 50.0;  // absurd, to force the cap
  CellularNetwork net(p, Rng(3));
  for (int i = 0; i < 5000; ++i) {
    const auto r = net.uplink().transmit(at_s(i * 0.5), 76);
    if (r.delivered) {
      ASSERT_LE(r.delay, p.max_one_way);
    }
  }
}

TEST(Cellular, CongestionOccupancyMatchesSojourns) {
  CellularParams p;
  p.mean_clear_duration = Duration::seconds(60);
  p.mean_congested_duration = Duration::seconds(20);
  CellularNetwork net(p, Rng(4));
  int congested = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (net.congested(at_s(i * 0.5))) ++congested;
  }
  EXPECT_NEAR(static_cast<double>(congested) / n, 0.25, 0.06);
}

TEST(Cellular, CongestionInflatesUplink) {
  CellularNetwork net(CellularParams{}, Rng(5));
  core::RunningStats clear, congested;
  for (int i = 0; i < 40000; ++i) {
    const TimePoint t = at_s(i * 0.5);
    const bool c = net.congested(t);
    const auto r = net.uplink().transmit(t, 76);
    if (!r.delivered) continue;
    (c ? congested : clear).add(r.delay.to_millis());
  }
  ASSERT_GT(congested.count(), 200u);
  EXPECT_GT(congested.mean(), clear.mean() * 1.5);
}

TEST(Cellular, LossHigherUnderCongestion) {
  CellularParams p;
  p.loss_probability = 0.01;
  p.congested_loss_probability = 0.3;
  CellularNetwork net(p, Rng(6));
  std::size_t clear_n = 0, clear_lost = 0, cong_n = 0, cong_lost = 0;
  for (int i = 0; i < 40000; ++i) {
    const TimePoint t = at_s(i * 0.5);
    const bool c = net.congested(t);
    const auto r = net.uplink().transmit(t, 76);
    if (c) {
      ++cong_n;
      cong_lost += r.delivered ? 0 : 1;
    } else {
      ++clear_n;
      clear_lost += r.delivered ? 0 : 1;
    }
  }
  EXPECT_NEAR(static_cast<double>(clear_lost) / clear_n, 0.01, 0.01);
  EXPECT_GT(static_cast<double>(cong_lost) / cong_n, 0.2);
}

TEST(Cellular, DeterministicPerSeed) {
  CellularNetwork a(CellularParams{}, Rng(7));
  CellularNetwork b(CellularParams{}, Rng(7));
  for (int i = 0; i < 200; ++i) {
    const auto ra = a.uplink().transmit(at_s(i), 76);
    const auto rb = b.uplink().transmit(at_s(i), 76);
    ASSERT_EQ(ra.delivered, rb.delivered);
    ASSERT_EQ(ra.delay, rb.delay);
  }
}

}  // namespace
}  // namespace mntp::net
