// Cross-seed calibration stability.
//
// The bench harness asserts the paper's qualitative claims at fixed
// seeds; these tests sweep seeds to show the claims are properties of
// the calibrated model, not artifacts of one lucky random stream. The
// paper makes the same argument for its own testbed (§3.2: repeating the
// experiments "will lead to results that have similar statistical
// properties").
#include <gtest/gtest.h>

#include "core/stats.h"
#include "mntp/mntp_client.h"
#include "ntp/sntp_client.h"
#include "ntp/testbed.h"

namespace mntp {
namespace {

using core::Duration;
using core::TimePoint;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, WirelessSntpStatisticsStayInBand) {
  ntp::TestbedConfig config;
  config.seed = GetParam();
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);
  ntp::SntpClientPolicy policy;
  policy.poll_interval = Duration::seconds(5);
  ntp::SntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                         bed.last_hop_up(), bed.last_hop_down(), policy);
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(40));

  const auto offsets = client.offsets_ms();
  ASSERT_GT(offsets.size(), 200u);
  const auto s = core::summarize(offsets);
  // Wireless SNTP lives in the paper's regime at every seed: noticeably
  // positive-skewed, tens-of-ms spread, spikes in the hundreds of ms.
  EXPECT_GT(s.stddev, 15.0) << "seed " << GetParam();
  EXPECT_LT(s.stddev, 250.0) << "seed " << GetParam();
  EXPECT_GT(core::max_abs(offsets), 100.0) << "seed " << GetParam();
  EXPECT_GT(s.mean, -25.0) << "seed " << GetParam();
  EXPECT_LT(s.mean, 100.0) << "seed " << GetParam();
  // The NTP-corrected clock itself stays usable.
  EXPECT_LT(std::abs(bed.true_clock_offset_ms()), 40.0) << "seed " << GetParam();
}

TEST_P(SeedSweep, MntpHeadlineClaimHoldsAtEverySeed) {
  ntp::TestbedConfig config;
  config.seed = GetParam() * 7919 + 13;  // decorrelate from the SNTP sweep
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);

  ntp::SntpClientPolicy policy;
  policy.poll_interval = Duration::seconds(5);
  ntp::SntpClient sntp(bed.sim(), bed.target_clock(), bed.pool(),
                       bed.last_hop_up(), bed.last_hop_down(), policy);
  protocol::MntpClient mntp_client(bed.sim(), bed.target_clock(), bed.pool(),
                                   bed.channel(), protocol::head_to_head_params(),
                                   bed.fork_rng());
  bed.start();
  sntp.start();
  mntp_client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(40));

  const auto sntp_offsets = sntp.offsets_ms();
  const auto mntp_offsets = mntp_client.engine().accepted_offsets_ms();
  ASSERT_GT(mntp_offsets.size(), 50u);
  // The paper's core result, at every seed: MNTP's reported offsets are
  // dramatically tighter than SNTP's on the same channel.
  EXPECT_LT(core::max_abs(mntp_offsets), 60.0) << "seed " << config.seed;
  EXPECT_LT(core::rmse(mntp_offsets), core::rmse(sntp_offsets) / 2.0)
      << "seed " << config.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(3, 17, 101, 2024, 90210));

}  // namespace
}  // namespace mntp
