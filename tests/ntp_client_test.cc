// Reference NTP client integration tests: discipline convergence,
// stepout behaviour, false-ticker immunity, wireless survival.
#include <gtest/gtest.h>

#include <cmath>

#include "ntp/testbed.h"

namespace mntp::ntp {
namespace {

using core::Duration;
using core::TimePoint;

TEST(NtpClient, DisciplinesWiredClockToMilliseconds) {
  TestbedConfig config;
  config.seed = 100;
  config.wireless = false;
  config.monitor_active = false;
  config.client_clock.initial_offset_s = 0.05;  // start 50 ms off
  Testbed bed(config);
  bed.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(40));
  // Converged and tracking.
  double worst = 0.0;
  for (int m = 41; m <= 60; ++m) {
    bed.sim().run_until(TimePoint::epoch() + Duration::minutes(m));
    worst = std::max(worst, std::abs(bed.true_clock_offset_ms()));
  }
  EXPECT_LT(worst, 8.0);
  EXPECT_GT(bed.ntp_client()->updates(), 50u);
}

TEST(NtpClient, CompensatesConstantSkew) {
  TestbedConfig config;
  config.seed = 101;
  config.wireless = false;
  config.monitor_active = false;
  config.client_clock.constant_skew_ppm = -20.0;
  config.client_clock.wander_ppm_per_sqrt_s = 0.0;
  config.client_clock.temp_amplitude_ppm = 0.0;
  Testbed bed(config);
  bed.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(2));
  // The frequency integral should have learned most of the +20 ppm
  // correction.
  EXPECT_GT(bed.target_clock().frequency_compensation_ppm(), 10.0);
  EXPECT_LT(std::abs(bed.true_clock_offset_ms()), 8.0);
}

TEST(NtpClient, StepsLargeInitialError) {
  TestbedConfig config;
  config.seed = 102;
  config.wireless = false;
  config.monitor_active = false;
  config.client_clock.initial_offset_s = 2.0;  // way above step threshold
  Testbed bed(config);
  bed.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30));
  EXPECT_GE(bed.ntp_client()->steps(), 1u);
  EXPECT_LT(std::abs(bed.true_clock_offset_ms()), 20.0);
}

TEST(NtpClient, SurvivesFalseTickerInPeerSet) {
  TestbedConfig config;
  config.seed = 103;
  config.wireless = false;
  config.monitor_active = false;
  config.pool.false_ticker_count = 1;  // placed last: index 7
  config.ntp.peer_indices = {0, 1, 2, 7};  // peer WITH the false ticker
  Testbed bed(config);
  bed.start();
  double worst = 0.0;
  for (int m = 30; m <= 60; m += 5) {
    bed.sim().run_until(TimePoint::epoch() + Duration::minutes(m));
    worst = std::max(worst, std::abs(bed.true_clock_offset_ms()));
  }
  // The intersection algorithm must exclude the 350 ms false ticker.
  EXPECT_LT(worst, 10.0);
}

TEST(NtpClient, HoldsClockOnLossyWirelessChannel) {
  TestbedConfig config;
  config.seed = 104;
  config.wireless = true;
  config.monitor_active = true;
  Testbed bed(config);
  bed.start();
  double worst = 0.0;
  for (int m = 20; m <= 60; m += 2) {
    bed.sim().run_until(TimePoint::epoch() + Duration::minutes(m));
    worst = std::max(worst, std::abs(bed.true_clock_offset_ms()));
  }
  // Paper baseline: ntpd keeps the wireless host's clock usable while
  // raw SNTP offsets swing by hundreds of ms.
  EXPECT_LT(worst, 30.0);
}

TEST(NtpClient, StepoutIgnoresSingleSpikeRound) {
  // Directly exercise the guard using a wired testbed: inject one giant
  // combined offset by pausing between polls is impractical here, so
  // instead verify no steps occur on a healthy run (spikes absorbed).
  TestbedConfig config;
  config.seed = 105;
  config.wireless = true;
  Testbed bed(config);
  bed.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(1));
  // A healthy wireless run must not be stepping the clock around.
  EXPECT_LE(bed.ntp_client()->steps(), 1u);
}

TEST(Testbed, DeterministicAcrossInstances) {
  auto run = [] {
    TestbedConfig config;
    config.seed = 106;
    config.wireless = true;
    Testbed bed(config);
    bed.start();
    bed.sim().run_until(TimePoint::epoch() + Duration::minutes(10));
    return bed.true_clock_offset_ms();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Testbed, WiredAndWirelessExposeDifferentLastHops) {
  TestbedConfig wired_config;
  wired_config.wireless = false;
  Testbed wired(wired_config);
  EXPECT_NE(wired.last_hop_up(), wired.last_hop_down());

  TestbedConfig wireless_config;
  wireless_config.wireless = true;
  Testbed wireless(wireless_config);
  EXPECT_EQ(wireless.last_hop_up(), &wireless.channel().uplink());
  EXPECT_EQ(wireless.last_hop_down(), &wireless.channel().downlink());
}

TEST(Testbed, NoNtpClientWhenCorrectionDisabled) {
  TestbedConfig config;
  config.ntp_correction = false;
  Testbed bed(config);
  EXPECT_EQ(bed.ntp_client(), nullptr);
  bed.start();  // must not crash
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(1));
}

}  // namespace
}  // namespace mntp::ntp
