#include "sim/clock_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.h"

namespace mntp::sim {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

OscillatorParams pure_skew(double ppm) {
  OscillatorParams p;
  p.constant_skew_ppm = ppm;
  return p;
}

TEST(OscillatorModel, ConstantSkewIntegratesExactly) {
  OscillatorModel osc(pure_skew(10.0), Rng(1));
  // +10 ppm over 1000 s = +10 ms.
  EXPECT_NEAR(osc.offset_at(at_s(1000)) * 1e3, 10.0, 1e-6);
  EXPECT_NEAR(osc.offset_at(at_s(3600)) * 1e3, 36.0, 1e-6);
}

TEST(OscillatorModel, InitialOffsetRespected) {
  OscillatorParams p = pure_skew(0.0);
  p.initial_offset_s = 0.25;
  OscillatorModel osc(p, Rng(1));
  EXPECT_DOUBLE_EQ(osc.offset_at(TimePoint::epoch()), 0.25);
  EXPECT_DOUBLE_EQ(osc.offset_at(at_s(100)), 0.25);
}

TEST(OscillatorModel, NegativeSkewDriftsDown) {
  OscillatorModel osc(pure_skew(-5.5), Rng(1));
  EXPECT_NEAR(osc.offset_at(at_s(3600)) * 1e3, -19.8, 1e-3);
}

TEST(OscillatorModel, LocalTimeConsistentWithOffset) {
  OscillatorModel osc(pure_skew(100.0), Rng(1));
  const TimePoint t = at_s(50);
  const double off = osc.offset_at(t);
  EXPECT_NEAR((osc.local_time(t) - t).to_seconds(), off, 1e-12);
}

TEST(OscillatorModel, TimeBackwardsThrows) {
  OscillatorModel osc(pure_skew(0.0), Rng(1));
  (void)osc.offset_at(at_s(10));
  EXPECT_THROW((void)osc.offset_at(at_s(5)), std::logic_error);
}

TEST(OscillatorModel, RejectsZeroIntegrationStep) {
  OscillatorParams p;
  p.integration_step = Duration::zero();
  EXPECT_THROW(OscillatorModel(p, Rng(1)), std::invalid_argument);
}

TEST(OscillatorModel, TemperatureTermIsBoundedAndPeriodic) {
  OscillatorParams p = pure_skew(0.0);
  p.temp_amplitude_ppm = 2.0;
  p.temp_period = Duration::seconds(1000);
  OscillatorModel osc(p, Rng(1));
  // Integral of A*sin(2pi t/T) over a full period is zero: offset returns
  // near its starting value each period.
  const double at_full = osc.offset_at(at_s(1000));
  EXPECT_NEAR(at_full * 1e3, 0.0, 0.05);
  // Peak drift rate occurs in the first half period; the offset at T/2 is
  // A*T/pi ppm-seconds = 2e-6 * 1000 / pi s ~ 0.64 ms.
  OscillatorModel osc2(p, Rng(1));
  EXPECT_NEAR(osc2.offset_at(at_s(500)) * 1e3, 2e-3 * 1000.0 / M_PI, 0.05);
}

TEST(OscillatorModel, WanderIsDeterministicPerSeed) {
  OscillatorParams p = pure_skew(0.0);
  p.wander_ppm_per_sqrt_s = 0.1;
  OscillatorModel a(p, Rng(7));
  OscillatorModel b(p, Rng(7));
  for (int i = 1; i <= 20; ++i) {
    ASSERT_DOUBLE_EQ(a.offset_at(at_s(i * 10)), b.offset_at(at_s(i * 10)));
  }
}

TEST(OscillatorModel, WanderStaysClamped) {
  OscillatorParams p = pure_skew(0.0);
  p.wander_ppm_per_sqrt_s = 5.0;  // violent
  p.wander_clamp_ppm = 2.0;
  OscillatorModel osc(p, Rng(9));
  (void)osc.offset_at(at_s(600));
  EXPECT_LE(std::fabs(osc.current_skew_ppm()), 2.0 + 1e-9);
}

TEST(OscillatorModel, ReadNoiseDoesNotPerturbState) {
  OscillatorParams p = pure_skew(0.0);
  p.read_noise_s = 1e-3;
  OscillatorModel osc(p, Rng(3));
  core::RunningStats reads;
  for (int i = 1; i <= 2000; ++i) {
    reads.add(osc.read_offset(at_s(static_cast<double>(i))));
  }
  // Mean near the true offset (0), sd near the configured noise.
  EXPECT_NEAR(reads.mean(), 0.0, 1e-4);
  EXPECT_NEAR(reads.stddev(), 1e-3, 2e-4);
  // State itself unaffected by reads.
  EXPECT_DOUBLE_EQ(osc.offset_at(at_s(2000)), 0.0);
}

TEST(DisciplinedClock, StepShiftsPhase) {
  DisciplinedClock c(pure_skew(0.0), Rng(1));
  EXPECT_DOUBLE_EQ(c.offset_at(at_s(1)), 0.0);
  c.step(Duration::milliseconds(50));
  EXPECT_NEAR(c.offset_at(at_s(2)), 0.05, 1e-12);
  c.step(Duration::milliseconds(-20));
  EXPECT_NEAR(c.offset_at(at_s(3)), 0.03, 1e-12);
  EXPECT_EQ(c.total_stepped(), Duration::milliseconds(70));
}

TEST(DisciplinedClock, FrequencyCompensationIntegrates) {
  DisciplinedClock c(pure_skew(0.0), Rng(1));
  (void)c.offset_at(at_s(0));
  c.set_frequency_compensation(at_s(0), 10.0);  // +10 ppm
  EXPECT_NEAR(c.offset_at(at_s(100)) * 1e3, 1.0, 1e-9);  // +1 ms per 100 s
  c.set_frequency_compensation(at_s(100), -10.0);
  EXPECT_NEAR(c.offset_at(at_s(200)) * 1e3, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.frequency_compensation_ppm(), -10.0);
}

TEST(DisciplinedClock, CompensationCancelsSkew) {
  DisciplinedClock c(pure_skew(-8.0), Rng(1));
  (void)c.offset_at(at_s(0));
  c.set_frequency_compensation(at_s(0), 8.0);
  EXPECT_NEAR(c.offset_at(at_s(1000)) * 1e3, 0.0, 1e-6);
}

TEST(DisciplinedClock, LocalTimeMatchesOffset) {
  DisciplinedClock c(pure_skew(5.0), Rng(1));
  c.step(Duration::milliseconds(10));
  const TimePoint t = at_s(100);
  EXPECT_NEAR((c.local_time(t) - t).to_seconds(), c.offset_at(t), 1e-12);
}

}  // namespace
}  // namespace mntp::sim
