// Energy accountant and GPS time source tests.
#include <gtest/gtest.h>

#include <cmath>

#include "device/energy.h"
#include "device/gps.h"
#include "sim/simulation.h"

namespace mntp::device {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

TEST(Energy, SingleExchangeCosts) {
  RadioEnergyParams p;
  EnergyAccountant acc(p);
  acc.on_exchange(at_s(10), 152);
  const TimePoint end = at_s(100);  // window long closed
  // promotion + active premium + tail-baseline window + bytes.
  const double window_s =
      (p.active_per_exchange + p.tail_time).to_seconds();
  const double expected =
      p.promotion_mj +
      (p.active_mw - p.tail_mw) * p.active_per_exchange.to_seconds() +
      p.tail_mw * window_s + p.per_byte_mj * 152;
  EXPECT_NEAR(acc.total_mj(end), expected, 1e-6);
  EXPECT_EQ(acc.promotions(), 1u);
  EXPECT_EQ(acc.exchanges(), 1u);
  EXPECT_EQ(acc.bytes(), 152u);
  EXPECT_NEAR(acc.radio_on_time(end).to_seconds(), window_s, 1e-9);
}

TEST(Energy, BackToBackExchangesShareOnePromotion) {
  RadioEnergyParams p;
  EnergyAccountant burst(p);
  // Three exchanges 1 s apart: all inside the 12 s tail.
  burst.on_exchange(at_s(0), 152);
  burst.on_exchange(at_s(1), 152);
  burst.on_exchange(at_s(2), 152);
  EXPECT_EQ(burst.promotions(), 1u);

  EnergyAccountant spread(p);
  // Three exchanges a minute apart: three promotions + three tails.
  spread.on_exchange(at_s(0), 152);
  spread.on_exchange(at_s(60), 152);
  spread.on_exchange(at_s(120), 152);
  EXPECT_EQ(spread.promotions(), 3u);

  const TimePoint end = at_s(300);
  // The paper's point (via Balasubramanian et al.): the same bytes cost
  // much more when spread out.
  EXPECT_GT(spread.total_mj(end), burst.total_mj(end) * 1.8);
}

TEST(Energy, PerByteTermIsMinor) {
  RadioEnergyParams p;
  EnergyAccountant small(p), large(p);
  small.on_exchange(at_s(0), 76);
  large.on_exchange(at_s(0), 10'000);
  const TimePoint end = at_s(60);
  // Two orders of magnitude more bytes, but nowhere near 100x energy.
  EXPECT_LT(large.total_mj(end) / small.total_mj(end), 1.2);
}

TEST(Energy, OpenWindowAccruesPartially) {
  RadioEnergyParams p;
  EnergyAccountant acc(p);
  acc.on_exchange(at_s(0), 76);
  const double mid = acc.total_mj(at_s(5));
  const double later = acc.total_mj(at_s(10));
  EXPECT_LT(mid, later);
  // After the window closes the total stops growing.
  EXPECT_NEAR(acc.total_mj(at_s(50)), acc.total_mj(at_s(500)), 1e-9);
}

TEST(Energy, TimeBackwardsThrows) {
  EnergyAccountant acc;
  acc.on_exchange(at_s(100), 76);
  EXPECT_THROW(acc.on_exchange(at_s(50), 76), std::logic_error);
}

TEST(Gps, FixesCorrectTheClockWhenSkyIsOpen) {
  Rng rng(1);
  sim::Simulation sim;
  sim::DisciplinedClock clock(
      sim::OscillatorParams{.initial_offset_s = 1.0}, rng.fork());
  GpsParams params;
  params.mean_open_sky = Duration::hours(100);  // effectively always open
  params.mean_denied = Duration::seconds(1);
  params.fix_interval = Duration::minutes(5);
  GpsTimeSource gps(sim, clock, params, rng.fork());
  gps.start();
  sim.run_until(TimePoint::epoch() + Duration::hours(2));
  EXPECT_GT(gps.fixes(), 10u);
  EXPECT_LT(std::abs(clock.offset_at(sim.now())),
            params.fix_error_bound.to_seconds() + 1e-6);
}

TEST(Gps, DeniedEnvironmentDeliversNoFixesButBurnsEnergy) {
  Rng rng(2);
  sim::Simulation sim;
  sim::DisciplinedClock clock(sim::OscillatorParams{.initial_offset_s = 1.0},
                              rng.fork());
  GpsParams params;
  params.mean_open_sky = Duration::seconds(1);
  params.mean_denied = Duration::hours(1000);  // tunnel life
  params.fix_interval = Duration::minutes(10);
  GpsTimeSource gps(sim, clock, params, rng.fork());
  gps.start();
  sim.run_until(TimePoint::epoch() + Duration::hours(5));
  EXPECT_GT(gps.attempts(), 25u);
  EXPECT_EQ(gps.fixes(), 0u);
  EXPECT_GT(gps.energy_mj(), 25 * params.energy_per_attempt_mj * 0.9);
  // Clock error untouched.
  EXPECT_NEAR(clock.offset_at(sim.now()), 1.0, 0.01);
}

TEST(Gps, AvailabilityOscillates) {
  Rng rng(3);
  sim::Simulation sim;
  sim::DisciplinedClock clock(sim::OscillatorParams{}, rng.fork());
  GpsParams params;
  params.mean_open_sky = Duration::minutes(10);
  params.mean_denied = Duration::minutes(10);
  GpsTimeSource gps(sim, clock, params, rng.fork());
  int open = 0, denied = 0;
  for (int i = 0; i < 2000; ++i) {
    sim.run_until(TimePoint::epoch() + Duration::minutes(i));
    (gps.available(sim.now()) ? open : denied) += 1;
  }
  EXPECT_GT(open, 400);
  EXPECT_GT(denied, 400);
}

TEST(Gps, EnergyChargedPerAttempt) {
  Rng rng(4);
  sim::Simulation sim;
  sim::DisciplinedClock clock(sim::OscillatorParams{}, rng.fork());
  GpsParams params;
  params.fix_interval = Duration::minutes(10);
  GpsTimeSource gps(sim, clock, params, rng.fork());
  gps.start();
  sim.run_until(TimePoint::epoch() + Duration::hours(1));
  EXPECT_NEAR(gps.energy_mj(),
              static_cast<double>(gps.attempts()) * params.energy_per_attempt_mj,
              1e-9);
}

}  // namespace
}  // namespace mntp::device
