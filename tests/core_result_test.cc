#include "core/result.h"

#include <gtest/gtest.h>

#include <string>

namespace mntp::core {
namespace {

TEST(Error, FactoriesSetCode) {
  EXPECT_EQ(Error::invalid_argument("x").code, Error::Code::kInvalidArgument);
  EXPECT_EQ(Error::malformed("x").code, Error::Code::kMalformedPacket);
  EXPECT_EQ(Error::timeout("x").code, Error::Code::kTimeout);
  EXPECT_EQ(Error::lost("x").code, Error::Code::kPacketLost);
  EXPECT_EQ(Error::rejected("x").code, Error::Code::kRejected);
  EXPECT_EQ(Error::unavailable("x").code, Error::Code::kUnavailable);
  EXPECT_EQ(Error::not_found("x").code, Error::Code::kNotFound);
  EXPECT_EQ(Error::io("x").code, Error::Code::kIo);
}

TEST(Error, CodeNames) {
  EXPECT_STREQ(Error::timeout("").code_name(), "timeout");
  EXPECT_STREQ(Error::malformed("").code_name(), "malformed_packet");
  EXPECT_STREQ(Error::io("").code_name(), "io");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Error::timeout("late");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kTimeout);
  EXPECT_EQ(r.error().message, "late");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r = Error::io("disk");
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, ErrorOnValueThrows) {
  Result<int> r = 1;
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r = std::string("payload");
  const std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(Result, MutableValueAccess) {
  Result<std::string> r = std::string("a");
  r.value() += "b";
  EXPECT_EQ(r.value(), "ab");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_THROW((void)s.error(), std::logic_error);
}

TEST(Status, CarriesError) {
  Status s = Error::unavailable("down");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.error().code, Error::Code::kUnavailable);
}

}  // namespace
}  // namespace mntp::core
