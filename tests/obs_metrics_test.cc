#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/rng.h"

namespace mntp::obs {
namespace {

// Exact percentile of a sample set, nearest-rank on the sorted copy.
double exact_percentile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

TEST(Counter, IncrementsAndReads) {
  MetricsRegistry reg;
  Counter* c = reg.counter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->inc();
  c->inc(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(Counter, SameNameSameHandle) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.counter("y"));
}

TEST(Counter, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x", {{"b", "2"}, {"a", "1"}});
  Counter* b = reg.counter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
  // Different label VALUES are distinct series.
  EXPECT_NE(a, reg.counter("x", {{"a", "1"}, {"b", "3"}}));
  // Labeled and unlabeled are distinct series.
  EXPECT_NE(a, reg.counter("x"));
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("test.gauge");
  g->set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  g->add(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
  g->set(7.0);  // set overwrites, not accumulates
  EXPECT_DOUBLE_EQ(g->value(), 7.0);
}

TEST(Registry, DisableTurnsRecordsIntoNoOps) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  Gauge* g = reg.gauge("g");
  Histogram* h = reg.histogram("h");
  c->inc();
  g->set(1.0);
  h->record(5.0);

  reg.set_enabled(false);
  c->inc(100);
  g->set(99.0);
  h->record(50.0);
  EXPECT_EQ(c->value(), 1u);
  EXPECT_DOUBLE_EQ(g->value(), 1.0);
  EXPECT_EQ(h->count(), 1u);

  reg.set_enabled(true);
  c->inc();
  EXPECT_EQ(c->value(), 2u);
}

TEST(Histogram, MomentsAndExtremes) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h", HistogramOptions{.bucket_bounds = {10, 20}});
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);  // empty histogram reads as 0
  for (double v : {5.0, 15.0, 25.0, 1.0}) h->record(v);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 46.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 25.0);
  EXPECT_DOUBLE_EQ(h->mean(), 11.5);
}

TEST(Histogram, BucketPlacementIncludesOverflow) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h", HistogramOptions{.bucket_bounds = {1, 10}});
  ASSERT_EQ(h->bucket_count(), 3u);  // two finite + overflow
  h->record(0.5);   // <= 1
  h->record(1.0);   // boundary lands in its bucket (le semantics)
  h->record(5.0);   // <= 10
  h->record(100.0); // overflow
  EXPECT_EQ(h->bucket_value(0), 2u);
  EXPECT_EQ(h->bucket_value(1), 1u);
  EXPECT_EQ(h->bucket_value(2), 1u);
  EXPECT_DOUBLE_EQ(h->bucket_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h->bucket_bound(1), 10.0);
  EXPECT_TRUE(std::isinf(h->bucket_bound(2)));
}

TEST(HistogramOptions, ExponentialLadder) {
  const HistogramOptions o = HistogramOptions::exponential(1.0, 2.0, 4);
  ASSERT_EQ(o.bucket_bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(o.bucket_bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(o.bucket_bounds[3], 8.0);
  // The default latency ladder is ascending (a histogram precondition).
  const HistogramOptions lat = HistogramOptions::latency_ms();
  EXPECT_TRUE(std::is_sorted(lat.bucket_bounds.begin(), lat.bucket_bounds.end()));
}

TEST(P2Quantile, ExactForFirstFiveSamples) {
  P2Quantile q(0.50);
  q.add(30);
  q.add(10);
  q.add(50);
  EXPECT_DOUBLE_EQ(q.estimate(), 30.0);  // exact median of {10,30,50}
  q.add(20);
  q.add(40);
  EXPECT_DOUBLE_EQ(q.estimate(), 30.0);  // exact median of {10..50}
}

TEST(P2Quantile, TracksUniformStream) {
  core::Rng rng(42);
  P2Quantile p50(0.50), p90(0.90), p99(0.99);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 1000.0);
    xs.push_back(x);
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  // P² on a uniform stream converges to within a few percent of the
  // exact order statistics.
  EXPECT_NEAR(p50.estimate(), exact_percentile(xs, 0.50), 25.0);
  EXPECT_NEAR(p90.estimate(), exact_percentile(xs, 0.90), 25.0);
  EXPECT_NEAR(p99.estimate(), exact_percentile(xs, 0.99), 15.0);
}

TEST(P2Quantile, TracksLognormalTail) {
  core::Rng rng(7);
  P2Quantile p90(0.90);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(0.0, 1.0);
    xs.push_back(x);
    p90.add(x);
  }
  const double exact = exact_percentile(xs, 0.90);
  EXPECT_NEAR(p90.estimate(), exact, 0.15 * exact);
}

// The interpolated order statistic the P² estimator promises for n < 5:
// rank q*(n-1), linear between neighbours.
double interpolated_order_stat(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const double rank = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  return xs[lo] + (rank - static_cast<double>(lo)) * (xs[hi] - xs[lo]);
}

TEST(P2Quantile, FewerThanFiveSamplesIsExactOrderStatistic) {
  // Before the five markers exist the estimator must fall back to the
  // exact (interpolated) order statistic — for ANY quantile, not just
  // the median the five-sample test exercises.
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
    P2Quantile est(q);
    std::vector<double> seen;
    for (double x : xs) {
      est.add(x);
      seen.push_back(x);
      EXPECT_EQ(est.count(), seen.size());
      EXPECT_DOUBLE_EQ(est.estimate(), interpolated_order_stat(seen, q))
          << "q=" << q << " n=" << seen.size();
    }
  }
}

TEST(P2Quantile, EmptyAndSingleSample) {
  P2Quantile q(0.9);
  EXPECT_EQ(q.count(), 0u);
  EXPECT_DOUBLE_EQ(q.estimate(), 0.0);
  q.add(-7.5);
  EXPECT_DOUBLE_EQ(q.estimate(), -7.5);
}

TEST(P2Quantile, ConstantStreamStaysOnTheConstant) {
  // The parabolic marker update divides by marker-position gaps; a
  // constant stream collapses every height and must not drift or NaN.
  for (double q : {0.5, 0.99}) {
    P2Quantile est(q);
    for (int i = 0; i < 1000; ++i) est.add(42.25);
    EXPECT_DOUBLE_EQ(est.estimate(), 42.25) << "q=" << q;
  }
}

TEST(P2Quantile, NearConstantStreamStaysBracketed) {
  // Two distinct values: the estimate can interpolate but must stay
  // inside [lo, hi] no matter how the markers shuffle.
  P2Quantile est(0.9);
  for (int i = 0; i < 2000; ++i) est.add(i % 10 == 0 ? 5.0 : 3.0);
  EXPECT_GE(est.estimate(), 3.0);
  EXPECT_LE(est.estimate(), 5.0);
}

TEST(P2Quantile, SortedInputAgreesWithExactQuantile) {
  // Monotone input is the estimator's adversarial case (markers chase a
  // moving front); it must still land close on a long stream.
  P2Quantile p50(0.5), p90(0.9);
  std::vector<double> xs;
  for (int i = 1; i <= 10000; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    p50.add(x);
    p90.add(x);
  }
  EXPECT_NEAR(p50.estimate(), exact_percentile(xs, 0.5), 0.02 * 10000);
  EXPECT_NEAR(p90.estimate(), exact_percentile(xs, 0.9), 0.02 * 10000);
}

TEST(HistogramQuantiles, MatchP2OnLatencyData) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h", HistogramOptions::latency_ms());
  core::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.lognormal(std::log(20.0), 0.8);  // ms-ish latencies
    xs.push_back(x);
    h->record(x);
  }
  const double exact50 = exact_percentile(xs, 0.50);
  const double exact99 = exact_percentile(xs, 0.99);
  EXPECT_NEAR(h->p50(), exact50, 0.10 * exact50);
  EXPECT_NEAR(h->p99(), exact99, 0.25 * exact99);
  EXPECT_LT(h->p50(), h->p90());
  EXPECT_LT(h->p90(), h->p99());
}

TEST(Registry, SnapshotCarriesEveryKind) {
  MetricsRegistry reg;
  reg.counter("b.counter", {{"dir", "up"}})->inc(3);
  reg.gauge("a.gauge")->set(1.5);
  Histogram* h = reg.histogram("c.hist", HistogramOptions{.bucket_bounds = {10}});
  h->record(4.0);
  h->record(40.0);

  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  ASSERT_EQ(reg.size(), 3u);
  // Sorted by name.
  EXPECT_EQ(snaps[0].name, "a.gauge");
  EXPECT_EQ(snaps[1].name, "b.counter");
  EXPECT_EQ(snaps[2].name, "c.hist");

  EXPECT_EQ(snaps[0].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(snaps[0].value, 1.5);

  EXPECT_EQ(snaps[1].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(snaps[1].value, 3.0);
  ASSERT_EQ(snaps[1].labels.size(), 1u);
  EXPECT_EQ(snaps[1].labels[0].first, "dir");

  EXPECT_EQ(snaps[2].kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snaps[2].count, 2u);
  EXPECT_DOUBLE_EQ(snaps[2].sum, 44.0);
  ASSERT_EQ(snaps[2].buckets.size(), 2u);
  EXPECT_EQ(snaps[2].buckets[0].second, 1u);
  EXPECT_EQ(snaps[2].buckets[1].second, 1u);
  EXPECT_TRUE(std::isinf(snaps[2].buckets[1].first));
}

TEST(ShardedCounter, ExactUnderConcurrencyAnyThreadCount) {
  // The tentpole claim: per-thread cells merged at read are EXACT (no
  // lost updates) and the merged value is identical for every worker
  // partition of the same work.
  constexpr std::uint64_t kTotal = 64 * 1000;
  std::vector<std::uint64_t> merged;
  for (std::size_t threads : {1u, 4u, 16u}) {
    MetricsRegistry reg;
    ShardedCounter* c = reg.sharded_counter("sc");
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        const std::uint64_t n = kTotal / threads;
        for (std::uint64_t i = 0; i < n; ++i) c->inc();
        // Uneven remainder lands on worker 0.
        if (w == 0) c->inc(kTotal % threads);
      });
    }
    for (auto& t : pool) t.join();
    merged.push_back(c->value());
  }
  for (std::uint64_t v : merged) EXPECT_EQ(v, kTotal);
}

TEST(ShardedGauge, IntegralDeltasMergeBitIdenticalAcrossThreadCounts) {
  // Ascending-partial merge order + integral deltas => the double sum is
  // exact, so any thread count produces the same bits.
  constexpr std::size_t kTotalAdds = 2400;  // divisible by 1, 3 and 8
  std::vector<double> merged;
  for (std::size_t threads : {1u, 3u, 8u}) {
    MetricsRegistry reg;
    ShardedGauge* g = reg.sharded_gauge("sg");
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < threads; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = 0; i < kTotalAdds / threads; ++i) g->add(2.0);
      });
    }
    for (auto& t : pool) t.join();
    merged.push_back(g->value());
  }
  for (double v : merged) EXPECT_EQ(v, merged.front());
  EXPECT_DOUBLE_EQ(merged.front(), 2.0 * kTotalAdds);
}

TEST(ShardedMetrics, DisabledRegistryGatesWrites) {
  MetricsRegistry reg;
  ShardedCounter* c = reg.sharded_counter("sc");
  ShardedGauge* g = reg.sharded_gauge("sg");
  c->inc(5);
  g->add(1.5);
  reg.set_enabled(false);
  c->inc(100);
  g->add(100.0);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
  reg.set_enabled(true);
  c->inc();
  EXPECT_EQ(c->value(), 6u);
}

TEST(ShardedMetrics, SnapshotExportsAsPlainKinds) {
  // Consumers (report writer, mntp-inspect) must not care whether a
  // series was sharded: it snapshots as an ordinary counter/gauge.
  MetricsRegistry reg;
  reg.sharded_counter("a.sharded", {{"dir", "up"}})->inc(7);
  reg.sharded_gauge("b.sharded")->add(2.5);
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].name, "a.sharded");
  EXPECT_EQ(snaps[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(snaps[0].value, 7.0);
  ASSERT_EQ(snaps[0].labels.size(), 1u);
  EXPECT_EQ(snaps[1].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(snaps[1].value, 2.5);
}

TEST(ShardedMetrics, SameNameSameHandleAndLateRegistrationGrows) {
  MetricsRegistry reg;
  ShardedCounter* a = reg.sharded_counter("x");
  EXPECT_EQ(a, reg.sharded_counter("x"));
  a->inc(3);  // this thread's slab now exists with one counter cell
  // A handle registered AFTER the slab was built must still write
  // correctly (the slab grows on first touch).
  ShardedCounter* b = reg.sharded_counter("y");
  b->inc(9);
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(b->value(), 9u);
}

TEST(Registry, SnapshotSplitsLabelSeries) {
  MetricsRegistry reg;
  reg.counter("tx", {{"dir", "up"}})->inc(1);
  reg.counter("tx", {{"dir", "down"}})->inc(2);
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  // Same name, label-sorted: "down" < "up".
  EXPECT_EQ(snaps[0].labels[0].second, "down");
  EXPECT_DOUBLE_EQ(snaps[0].value, 2.0);
  EXPECT_EQ(snaps[1].labels[0].second, "up");
  EXPECT_DOUBLE_EQ(snaps[1].value, 1.0);
}

}  // namespace
}  // namespace mntp::obs
