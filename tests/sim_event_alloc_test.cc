// Allocation-count regression test for the event core: after warmup
// (slab and heap storage grown to steady state), the schedule/fire
// cycle must perform ZERO heap allocations. Guards the PR's central
// property — per-event cost is slab reuse, not malloc — via a global
// operator new/delete hook that counts every allocation in the process.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/fixed_function.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Replace the global allocator with a counting passthrough. Linked only
// into this test binary; all overloads funnel through the same counter
// so any allocation path (sized, array, nothrow) is visible.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace mntp::sim {
namespace {

core::TimePoint at_ns(std::int64_t ns) { return core::TimePoint::from_ns(ns); }

TEST(EventAllocation, SteadyStateScheduleFireIsAllocationFree) {
  EventQueue q;
  std::uint64_t fired = 0;
  std::int64_t t = 0;

  // Warmup: grow the slab and the heap vector past anything the timed
  // region needs (64 concurrent pending events, far fewer than 512).
  for (int i = 0; i < 512; ++i) {
    q.schedule(at_ns(t += 1'000), [&fired] { ++fired; });
  }
  while (!q.empty()) q.run_next();

  const std::uint64_t heap_before = core::fixed_function_heap_fallbacks();
  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 1'000; ++round) {
    for (int i = 0; i < 64; ++i) {
      q.schedule(at_ns(t += 1'000), [&fired] { ++fired; });
    }
    for (int i = 0; i < 64; ++i) q.run_next();
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);

  EXPECT_EQ(news_after - news_before, 0u)
      << "schedule/fire steady state allocated";
  EXPECT_EQ(core::fixed_function_heap_fallbacks(), heap_before);
  EXPECT_EQ(fired, 512u + 64'000u);
}

TEST(EventAllocation, SteadyStateCancelRecyclesWithoutSlabGrowth) {
  // Cancel churn: the slab free list must recycle slots; only the heap
  // vector's tombstone compaction may touch memory, and with the dead
  // count bounded by the live window it never does here.
  EventQueue q;
  std::uint64_t fired = 0;
  std::int64_t t = 0;
  for (int i = 0; i < 512; ++i) {
    q.schedule(at_ns(t += 1'000), [&fired] { ++fired; });
  }
  while (!q.empty()) q.run_next();

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 1'000; ++round) {
    EventHandle keep = q.schedule(at_ns(t += 1'000), [&fired] { ++fired; });
    EventHandle drop = q.schedule(at_ns(t += 1'000), [&fired] { ++fired; });
    drop.cancel();
    q.run_next();
    EXPECT_FALSE(keep.pending());
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(news_after - news_before, 0u) << "cancel churn allocated";
  EXPECT_EQ(fired, 512u + 1'000u);
}

TEST(EventAllocation, SimulationAfterPathIsAllocationFreeAtSteadyState) {
  // The full Simulation::after path (time arithmetic + telemetry counter
  // batching included) stays allocation-free once warm.
  Simulation sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 512; ++i) {
    sim.after(core::Duration::nanoseconds(i + 1), [&fired] { ++fired; });
  }
  sim.run();

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 1'000; ++round) {
    for (int i = 0; i < 16; ++i) {
      sim.after(core::Duration::nanoseconds(i + 1), [&fired] { ++fired; });
    }
    sim.run();
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(news_after - news_before, 0u) << "Simulation::after allocated";
  EXPECT_EQ(fired, 512u + 16'000u);
}

}  // namespace
}  // namespace mntp::sim
