#include "ntp/server.h"

#include <gtest/gtest.h>

#include "core/ntp_timestamp.h"

namespace mntp::ntp {
namespace {

using core::Duration;
using core::NtpTimestamp;
using core::Rng;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

NtpServerParams perfect_server() {
  NtpServerParams p;
  p.clock_offset_s = 0.0;
  p.clock_skew_ppm = 0.0;
  p.processing_mean = Duration::microseconds(100);
  return p;
}

std::array<std::uint8_t, NtpPacket::kWireSize> request_at(double t) {
  return NtpPacket::make_sntp_request(
             NtpTimestamp::from_time_point(at_s(t)))
      .to_bytes();
}

TEST(NtpServer, EchoesOriginAndStampsTimes) {
  NtpServer server("s", perfect_server(), Rng(1));
  const auto wire = request_at(0.25);
  const auto reply = server.handle(wire, at_s(1.0));
  ASSERT_TRUE(reply.ok());
  const NtpPacket& p = reply.value().packet;
  EXPECT_EQ(p.mode, Mode::kServer);
  EXPECT_EQ(p.origin_ts, NtpTimestamp::from_time_point(at_s(0.25)));
  // Receive stamp equals server time at arrival (perfect clock).
  EXPECT_LE((p.receive_ts.to_time_point() - at_s(1.0)).abs().ns(), 2);
  // Transmit after receive, and departure matches transmit stamp.
  EXPECT_GT(p.transmit_ts, p.receive_ts);
  EXPECT_GE(reply.value().departs, at_s(1.0));
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(NtpServer, AppliesClockOffsetToStamps) {
  NtpServerParams params = perfect_server();
  params.clock_offset_s = 0.5;
  NtpServer server("off", params, Rng(2));
  const auto reply = server.handle(request_at(0.0), at_s(1.0));
  ASSERT_TRUE(reply.ok());
  EXPECT_NEAR(
      (reply.value().packet.receive_ts.to_time_point() - at_s(1.5)).to_seconds(),
      0.0, 1e-6);
}

TEST(NtpServer, SkewAccumulates) {
  NtpServerParams params = perfect_server();
  params.clock_skew_ppm = 100.0;
  NtpServer server("skew", params, Rng(3));
  EXPECT_NEAR(server.clock_error_at(at_s(1000)), 0.1, 1e-9);  // 100ppm * 1000s
  EXPECT_NEAR((server.server_time(at_s(1000)) - at_s(1000)).to_seconds(), 0.1,
              1e-6);
}

TEST(NtpServer, RejectsMalformedWire) {
  NtpServer server("s", perfect_server(), Rng(4));
  const std::vector<std::uint8_t> junk(10, 0xFF);
  EXPECT_FALSE(server.handle(junk, at_s(1)).ok());
}

TEST(NtpServer, RejectsNonClientMode) {
  NtpServer server("s", perfect_server(), Rng(5));
  NtpPacket p;
  p.mode = Mode::kServer;
  p.transmit_ts = NtpTimestamp::from_parts(1, 1);
  EXPECT_FALSE(server.handle(p.to_bytes(), at_s(1)).ok());
}

TEST(NtpServer, KissOfDeathReply) {
  NtpServerParams params = perfect_server();
  params.kiss_of_death = true;
  NtpServer server("kod", params, Rng(6));
  const auto reply = server.handle(request_at(0.0), at_s(1.0));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().packet.is_kiss_of_death());
  EXPECT_EQ(reply.value().packet.reference_id, kiss_code("RATE"));
}

TEST(NtpServer, BudgetedRateLimitKodsOverflowAndResetsPerWindow) {
  NtpServerParams params = perfect_server();
  params.rate_limit_per_window = 2;
  params.rate_limit_window = Duration::seconds(1);
  NtpServer server("budget", params, Rng(10));
  // First two requests in the window get time; the third gets RATE.
  for (int i = 0; i < 2; ++i) {
    const auto reply = server.handle(request_at(0.0), at_s(0.1 * (i + 1)));
    ASSERT_TRUE(reply.ok());
    EXPECT_FALSE(reply.value().packet.is_kiss_of_death());
  }
  const auto over = server.handle(request_at(0.0), at_s(0.3));
  ASSERT_TRUE(over.ok());
  EXPECT_TRUE(over.value().packet.is_kiss_of_death());
  EXPECT_EQ(over.value().packet.reference_id, kiss_code("RATE"));
  EXPECT_EQ(server.kod_sent(), 1u);
  // A new window replenishes the budget.
  const auto fresh = server.handle(request_at(0.0), at_s(1.1));
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().packet.is_kiss_of_death());
  EXPECT_EQ(server.kod_sent(), 1u);
  EXPECT_EQ(server.requests_served(), 4u);
}

TEST(NtpServer, KodBackoffIntervalMultipliesThenCaps) {
  constexpr std::uint64_t kCap = 1'000'000'000ull;  // 1 s
  EXPECT_EQ(kod_backoff_interval_ns(100, 4.0, kCap), 400u);
  EXPECT_EQ(kod_backoff_interval_ns(300'000'000ull, 4.0, kCap), kCap);
  EXPECT_EQ(kod_backoff_interval_ns(kCap, 4.0, kCap), kCap);
  // Degenerate factors fall back to the cap instead of shrinking.
  EXPECT_EQ(kod_backoff_interval_ns(100, 0.0, kCap), kCap);
  EXPECT_EQ(kod_backoff_interval_ns(100, -1.0, kCap), kCap);
}

TEST(NtpServer, AdvertisesRootDelayAndDispersion) {
  NtpServerParams params = perfect_server();
  params.root_delay = Duration::milliseconds(12);
  params.root_dispersion = Duration::milliseconds(6);
  NtpServer server("root", params, Rng(7));
  const auto reply = server.handle(request_at(0.0), at_s(1.0));
  ASSERT_TRUE(reply.ok());
  EXPECT_NEAR(reply.value().packet.root_delay.to_duration().to_millis(), 12.0,
              0.1);
  EXPECT_NEAR(reply.value().packet.root_dispersion.to_duration().to_millis(),
              6.0, 0.1);
}

TEST(NtpServer, VersionMirrorsRequest) {
  NtpServer server("s", perfect_server(), Rng(8));
  NtpPacket req = NtpPacket::make_sntp_request(NtpTimestamp::from_parts(5, 5));
  req.version = 3;
  const auto reply = server.handle(req.to_bytes(), at_s(1.0));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().packet.version, 3);
}

TEST(NtpServer, FalseTickerFactory) {
  const NtpServerParams p = NtpServer::false_ticker(-0.35, 2.0);
  EXPECT_DOUBLE_EQ(p.clock_offset_s, -0.35);
  EXPECT_DOUBLE_EQ(p.clock_skew_ppm, 2.0);
  NtpServer server("false", p, Rng(9));
  EXPECT_NEAR(server.clock_error_at(TimePoint::epoch()), -0.35, 1e-12);
}

}  // namespace
}  // namespace mntp::ntp
