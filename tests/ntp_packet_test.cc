#include "ntp/packet.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace mntp::ntp {
namespace {

using core::NtpShort;
using core::NtpTimestamp;

NtpPacket sample_packet() {
  NtpPacket p;
  p.leap = LeapIndicator::kLastMinute61;
  p.version = 4;
  p.mode = Mode::kServer;
  p.stratum = 2;
  p.poll = 6;
  p.precision = -23;
  p.root_delay = NtpShort::from_raw(0x00012345);
  p.root_dispersion = NtpShort::from_raw(0x00006789);
  p.reference_id = 0x47505300;
  p.reference_ts = NtpTimestamp::from_parts(100, 200);
  p.origin_ts = NtpTimestamp::from_parts(300, 400);
  p.receive_ts = NtpTimestamp::from_parts(500, 600);
  p.transmit_ts = NtpTimestamp::from_parts(700, 800);
  return p;
}

TEST(NtpPacket, SerializeParseRoundTrip) {
  const NtpPacket p = sample_packet();
  const auto wire = p.to_bytes();
  const auto parsed = NtpPacket::parse(wire);
  ASSERT_TRUE(parsed.ok());
  const NtpPacket& q = parsed.value();
  EXPECT_EQ(q.leap, p.leap);
  EXPECT_EQ(q.version, p.version);
  EXPECT_EQ(q.mode, p.mode);
  EXPECT_EQ(q.stratum, p.stratum);
  EXPECT_EQ(q.poll, p.poll);
  EXPECT_EQ(q.precision, p.precision);
  EXPECT_EQ(q.root_delay, p.root_delay);
  EXPECT_EQ(q.root_dispersion, p.root_dispersion);
  EXPECT_EQ(q.reference_id, p.reference_id);
  EXPECT_EQ(q.reference_ts, p.reference_ts);
  EXPECT_EQ(q.origin_ts, p.origin_ts);
  EXPECT_EQ(q.receive_ts, p.receive_ts);
  EXPECT_EQ(q.transmit_ts, p.transmit_ts);
}

TEST(NtpPacket, FirstOctetPacking) {
  NtpPacket p;
  p.leap = LeapIndicator::kUnsynchronized;  // 3
  p.version = 4;
  p.mode = Mode::kClient;  // 3
  const auto wire = p.to_bytes();
  // LI=11 VN=100 Mode=011 -> 1110 0011.
  EXPECT_EQ(wire[0], 0xE3);
}

TEST(NtpPacket, BigEndianFieldLayout) {
  const NtpPacket p = sample_packet();
  const auto wire = p.to_bytes();
  // root_delay 0x00012345 at offset 4.
  EXPECT_EQ(wire[4], 0x00);
  EXPECT_EQ(wire[5], 0x01);
  EXPECT_EQ(wire[6], 0x23);
  EXPECT_EQ(wire[7], 0x45);
  // reference_id "GPS\0" at offset 12.
  EXPECT_EQ(wire[12], 'G');
  EXPECT_EQ(wire[13], 'P');
  EXPECT_EQ(wire[14], 'S');
  // transmit_ts seconds=700 at offset 40.
  EXPECT_EQ(wire[40], 0x00);
  EXPECT_EQ(wire[43], 700 & 0xFF);
}

TEST(NtpPacket, ParseRejectsShortInput) {
  const std::vector<std::uint8_t> short_wire(47, 0);
  const auto r = NtpPacket::parse(short_wire);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, core::Error::Code::kMalformedPacket);
}

TEST(NtpPacket, ParseRejectsReservedMode) {
  auto wire = sample_packet().to_bytes();
  wire[0] = static_cast<std::uint8_t>((wire[0] & ~0x07) | 0x00);  // mode 0
  EXPECT_FALSE(NtpPacket::parse(wire).ok());
}

TEST(NtpPacket, ParseRejectsBadVersion) {
  auto wire = sample_packet().to_bytes();
  wire[0] = static_cast<std::uint8_t>((wire[0] & ~0x38) | (7 << 3));  // v7
  EXPECT_FALSE(NtpPacket::parse(wire).ok());
  wire[0] = static_cast<std::uint8_t>(wire[0] & ~0x38);  // v0
  EXPECT_FALSE(NtpPacket::parse(wire).ok());
}

TEST(NtpPacket, ParseAcceptsVersions1Through4) {
  for (std::uint8_t v = 1; v <= 4; ++v) {
    NtpPacket p = sample_packet();
    p.version = v;
    const auto parsed = NtpPacket::parse(p.to_bytes());
    ASSERT_TRUE(parsed.ok()) << "version " << int(v);
    EXPECT_EQ(parsed.value().version, v);
  }
}

TEST(NtpPacket, SntpRequestZeroesEverythingButFirstOctetAndTransmit) {
  const auto xmt = NtpTimestamp::from_parts(999, 123);
  const NtpPacket p = NtpPacket::make_sntp_request(xmt);
  const auto wire = p.to_bytes();
  // Bytes 1..39 all zero.
  for (std::size_t i = 1; i < 40; ++i) {
    ASSERT_EQ(wire[i], 0) << "byte " << i;
  }
  EXPECT_EQ(p.transmit_ts, xmt);
  EXPECT_TRUE(p.looks_like_sntp_request());
}

TEST(NtpPacket, NtpRequestDoesNotLookLikeSntp) {
  const NtpPacket p = NtpPacket::make_ntp_request(
      NtpTimestamp::from_parts(1, 2), 6, NtpTimestamp::from_parts(3, 4));
  EXPECT_FALSE(p.looks_like_sntp_request());
}

TEST(NtpPacket, ServerReplyNotClassifiedAsSntpRequest) {
  NtpPacket p = sample_packet();  // mode server
  EXPECT_FALSE(p.looks_like_sntp_request());
}

TEST(NtpPacket, KissOfDeathDetection) {
  NtpPacket p;
  p.mode = Mode::kServer;
  p.stratum = 0;
  EXPECT_TRUE(p.is_kiss_of_death());
  p.stratum = 2;
  EXPECT_FALSE(p.is_kiss_of_death());
  p.stratum = 0;
  p.mode = Mode::kClient;
  EXPECT_FALSE(p.is_kiss_of_death());
}

TEST(NtpPacket, KissCodeAscii) {
  EXPECT_EQ(kiss_code("RATE"), 0x52415445u);
  EXPECT_EQ(kiss_code("DENY"), 0x44454E59u);
}

TEST(NtpPacket, ToStringMentionsFields) {
  const std::string s = sample_packet().to_string();
  EXPECT_NE(s.find("stratum=2"), std::string::npos);
  EXPECT_NE(s.find("mode=4"), std::string::npos);
}

TEST(NtpPacketProperty, RandomRoundTrips) {
  core::Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    NtpPacket p;
    p.leap = static_cast<LeapIndicator>(rng.uniform_int(0, 3));
    p.version = static_cast<std::uint8_t>(rng.uniform_int(1, 4));
    p.mode = static_cast<Mode>(rng.uniform_int(1, 7));
    p.stratum = static_cast<std::uint8_t>(rng.uniform_int(0, 16));
    p.poll = static_cast<std::int8_t>(rng.uniform_int(-6, 17));
    p.precision = static_cast<std::int8_t>(rng.uniform_int(-30, 0));
    p.root_delay = NtpShort::from_raw(static_cast<std::uint32_t>(rng.next_u64()));
    p.root_dispersion =
        NtpShort::from_raw(static_cast<std::uint32_t>(rng.next_u64()));
    p.reference_id = static_cast<std::uint32_t>(rng.next_u64());
    p.reference_ts = NtpTimestamp::from_raw(rng.next_u64());
    p.origin_ts = NtpTimestamp::from_raw(rng.next_u64());
    p.receive_ts = NtpTimestamp::from_raw(rng.next_u64());
    p.transmit_ts = NtpTimestamp::from_raw(rng.next_u64());
    const auto parsed = NtpPacket::parse(p.to_bytes());
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value().to_bytes(), p.to_bytes());
  }
}

}  // namespace
}  // namespace mntp::ntp
