// Cross-check: the fleet simulator and logs::generate model the same
// paper population (Table 1 servers, provider mix, §3.1 OWD shapes), so
// their per-provider-category OWD distributions must agree in shape —
// same category ordering and medians within a generous band. Guards
// against the two models drifting apart when either side is retuned.
#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "fleet/client_fleet.h"
#include "fleet/params.h"
#include "fleet/simulator.h"
#include "logs/generate.h"
#include "logs/spec.h"
#include "obs/telemetry.h"

namespace mntp {
namespace {

double median_of(std::vector<float>& v) {
  EXPECT_FALSE(v.empty());
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return static_cast<double>(v[mid]);
}

TEST(FleetOwdVsLogs, CategoryMediansAgreeInShape) {
  // Per-category valid OWD samples from the synthetic-log pipeline.
  logs::GeneratorParams log_params;
  log_params.scale = 1.0 / 400.0;  // enough samples per category
  logs::LogGenerator generator(log_params, core::Rng(99));
  std::array<std::vector<float>, 4> log_samples;
  for (const logs::ServerLog& log : generator.generate_all()) {
    for (const logs::ClientRecord& client : log.clients) {
      const auto cat = static_cast<std::size_t>(
          logs::kPaperProviders[client.provider_index].category);
      for (const float owd : client.owd_samples_ms) {
        if (owd >= 0.0F) log_samples[cat].push_back(owd);
      }
    }
  }

  // Per-category OWD histograms from the fleet simulator.
  obs::Telemetry tel;
  obs::ScopedTelemetry scope(tel);
  fleet::FleetParams p;
  p.clients = 30'000;
  p.duration_s = 30.0;
  p.shards = 16;
  p.seed = 5;
  fleet::Simulator sim(
      std::make_shared<const fleet::ClientFleet>(fleet::ClientFleet::build(p)),
      p);
  const fleet::FleetResult r = sim.run(2);

  std::array<double, 4> log_median{};
  std::array<double, 4> fleet_median{};
  for (std::size_t c = 0; c < 4; ++c) {
    log_median[c] = median_of(log_samples[c]);
    ASSERT_GT(r.owd.by_category[c].count(), 1'000U) << "category " << c;
    fleet_median[c] = r.owd.by_category[c].quantile(0.5);
  }

  // Same Figure-1 ordering on both sides: cloud < isp < broadband < mobile.
  EXPECT_LT(log_median[0], log_median[1]);
  EXPECT_LT(log_median[1], log_median[2]);
  EXPECT_LT(log_median[2], log_median[3]);
  EXPECT_LT(fleet_median[0], fleet_median[1]);
  EXPECT_LT(fleet_median[1], fleet_median[2]);
  EXPECT_LT(fleet_median[2], fleet_median[3]);

  // Medians within a generous band: the models share base-OWD draws but
  // differ in per-query jitter (Pareto tails, MAC backoff, clock error),
  // so require agreement within 2x, not equality.
  for (std::size_t c = 0; c < 4; ++c) {
    const double ratio = fleet_median[c] / log_median[c];
    EXPECT_GT(ratio, 0.5) << "category " << c << " fleet=" << fleet_median[c]
                          << " logs=" << log_median[c];
    EXPECT_LT(ratio, 2.0) << "category " << c << " fleet=" << fleet_median[c]
                          << " logs=" << log_median[c];
  }
}

}  // namespace
}  // namespace mntp
