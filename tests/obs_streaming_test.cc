// Streaming-sink tests: chunked-writer meta patching and flush
// accounting, the query-trace reorder window (in-order emission,
// force-advance, straggler accounting), streamed-vs-batch body
// equality, and timeline chunked-export byte identity.
#include "obs/streaming.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/time.h"
#include "obs/query_trace.h"
#include "obs/timeseries.h"

namespace mntp::obs {
namespace {

using core::TimePoint;

TimePoint at(std::int64_t ns) { return TimePoint::from_ns(ns); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::istringstream stream(read_file(path));
  std::vector<std::string> lines;
  for (std::string line; std::getline(stream, line);) lines.push_back(line);
  return lines;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(ChunkedJsonlWriter, MetaSlotPatchedAtClose) {
  const std::string path = temp_path("chunked_meta.jsonl");
  ChunkedJsonlWriter writer;
  ASSERT_TRUE(writer.open(
      path, ChunkedJsonlWriter::Options{.chunk_bytes = 32, .meta_width = 64}));
  for (int i = 0; i < 10; ++i) {
    writer.line("{\"type\":\"row\",\"i\":" + std::to_string(i) + "}");
  }
  ASSERT_TRUE(writer.close_with_meta("{\"type\":\"meta\",\"rows\":10}"));
  // Tiny chunks force several physical flushes — the bounded-memory
  // property the writer exists for.
  EXPECT_GE(writer.flushes(), 3u);
  EXPECT_GT(writer.bytes_written(), 0u);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 11u);
  // The first line is the patched meta, space-padded to width-1; the
  // padding must be insignificant to the parser.
  EXPECT_EQ(lines[0].size(), 63u);
  const auto meta = core::Json::parse(lines[0]);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value()["rows"].as_int(), 10);
  for (int i = 0; i < 10; ++i) {
    const auto row = core::Json::parse(lines[static_cast<std::size_t>(i) + 1]);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row.value()["i"].as_int(), i);
  }
}

TEST(ChunkedJsonlWriter, RejectsMetaWiderThanTheSlot) {
  const std::string path = temp_path("chunked_overflow.jsonl");
  ChunkedJsonlWriter writer;
  ASSERT_TRUE(writer.open(
      path, ChunkedJsonlWriter::Options{.chunk_bytes = 64, .meta_width = 8}));
  writer.line("{}");
  EXPECT_FALSE(writer.close_with_meta("{\"far_too_long_for_the_slot\":1}"));
}

TEST(StreamingQueryTraceSink, EmitsOutOfOrderFinishesInIdOrder) {
  const std::string path = temp_path("stream_reorder.jsonl");
  QueryTracer tracer;
  tracer.set_enabled(true);
  StreamingQueryTraceSink sink;
  ASSERT_TRUE(sink.open(path));
  tracer.set_stream(&sink);

  const QueryId a = tracer.begin(at(10), "round");
  const QueryId b = tracer.begin(at(20), "round");
  const QueryId c = tracer.begin(at(30), "round");
  // Finish in reverse: c's line must wait for a and b.
  tracer.finish(c, at(31), Reason::kOk);
  tracer.finish(b, at(21), Reason::kTimeout);
  tracer.finish(a, at(11), Reason::kOk);
  ASSERT_TRUE(tracer.finish_stream("reorder_run", at(100)));

  EXPECT_EQ(sink.emitted(), 3u);
  EXPECT_EQ(sink.reorder_dropped(), 0u);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  std::vector<long long> ids;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto q = core::Json::parse(lines[i]);
    ASSERT_TRUE(q.ok());
    ids.push_back(q.value()["id"].as_int());
  }
  EXPECT_EQ(ids, (std::vector<long long>{
                     static_cast<long long>(a), static_cast<long long>(b),
                     static_cast<long long>(c)}));
  const auto meta = core::Json::parse(lines[0]);
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta.value()["streamed"].as_bool());
  EXPECT_EQ(meta.value()["query_count"].as_int(), 3);
}

TEST(StreamingQueryTraceSink, StreamedBodyMatchesBatchExportByteForByte) {
  // The core artifact-shape contract: modulo the meta line (padding and
  // streaming keys), a streamed file is the batch file.
  auto drive = [](QueryTracer& tracer) {
    const QueryId round = tracer.begin(at(100), "round");
    const QueryId exch = tracer.begin(at(110), "exchange", round);
    tracer.stage(exch, at(120), "hop", Reason::kNone,
                 {{"hop", std::string("wifi.up")}});
    tracer.finish(exch, at(130), Reason::kOk, {{"offset_ms", 1.5}});
    tracer.stage(round, at(135), "gate", Reason::kOk);
    tracer.finish(round, at(140), Reason::kAcceptedRegular);
  };

  const std::string streamed_path = temp_path("stream_eq.jsonl");
  QueryTracer streamed;
  streamed.set_enabled(true);
  StreamingQueryTraceSink sink;
  ASSERT_TRUE(sink.open(streamed_path));
  streamed.set_stream(&sink);
  drive(streamed);
  ASSERT_TRUE(streamed.finish_stream("eq_run", at(200)));

  const std::string batch_path = temp_path("batch_eq.jsonl");
  QueryTracer batch;
  batch.set_enabled(true);
  drive(batch);
  ASSERT_TRUE(batch.write_jsonl_file(batch_path, "eq_run", at(200)));

  const auto streamed_lines = read_lines(streamed_path);
  const auto batch_lines = read_lines(batch_path);
  ASSERT_EQ(streamed_lines.size(), batch_lines.size());
  for (std::size_t i = 1; i < batch_lines.size(); ++i) {
    EXPECT_EQ(streamed_lines[i], batch_lines[i]) << "line " << i;
  }
}

TEST(StreamingQueryTraceSink, ForceAdvancePastGapCountsStragglers) {
  const std::string path = temp_path("stream_force.jsonl");
  StreamingQueryTraceSink sink;
  StreamingQueryTraceSink::Options options;
  options.max_pending = 2;
  ASSERT_TRUE(sink.open(path, options));

  auto trace = [](QueryId id) {
    QueryTrace t;
    t.id = id;
    t.kind = "round";
    t.started = at(static_cast<std::int64_t>(id) * 10);
    t.finished = true;
    return t;
  };
  // Id 1 never resolves; ids 2..4 pile up behind the gap until the
  // window overflows and the sink force-advances past id 1.
  sink.emit(trace(2));
  sink.emit(trace(3));
  sink.emit(trace(4));
  // The straggler for the skipped id arrives with a payload: it cannot
  // be emitted without breaking id order, so it is counted lost.
  sink.emit(trace(1));
  EXPECT_EQ(sink.reorder_dropped(), 1u);
  ASSERT_TRUE(sink.close("force_run", at(1000), QueryTracer::Sampling{},
                         /*minted=*/4, /*kept=*/4, /*sampled_out=*/0,
                         /*dropped=*/0, /*dropped_stages=*/0));
  EXPECT_EQ(sink.emitted(), 3u);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  const auto meta = core::Json::parse(lines[0]);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value()["reorder_dropped"].as_int(), 1);
  std::vector<long long> ids;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    ids.push_back(core::Json::parse(lines[i]).value()["id"].as_int());
  }
  EXPECT_EQ(ids, (std::vector<long long>{2, 3, 4}));
}

TEST(WriteTimelineChunked, ByteIdenticalToBatchWriter) {
  TimeSeriesRecorder recorder;
  recorder.set_enabled(true);
  recorder.set_cadence(core::Duration::seconds(1));
  double x = 0.0;
  auto probe = recorder.probe(
      "test.series", {{"unit", "x"}},
      [&x](TimePoint) { return std::optional<double>(x); });
  for (int i = 1; i <= 50; ++i) {
    x = static_cast<double>(i) * 0.5;
    recorder.sample(at(static_cast<std::int64_t>(i) * 1'000'000'000));
  }

  std::ostringstream batch;
  write_timeline(batch, recorder, "tl_run", at(60'000'000'000));

  const std::string path = temp_path("timeline_chunked.jsonl");
  std::uint64_t bytes = 0, flushes = 0;
  const core::Status status = write_timeline_chunked(
      path, recorder, "tl_run", at(60'000'000'000), &bytes, &flushes);
  ASSERT_TRUE(status.ok());
  const std::string streamed = read_file(path);
  EXPECT_EQ(streamed, batch.str());
  EXPECT_EQ(bytes, streamed.size());
  EXPECT_GE(flushes, 1u);
}

}  // namespace
}  // namespace mntp::obs
