// Fleet determinism matrix: the simulator must produce bit-identical
// results — counters AND merged OWD histograms — for any worker count
// and any shard count. This is the contract that lets the bench gate
// compare fleet_qps numbers across machines with different core counts.
//
// Also the tsan_fleet target: under ThreadSanitizer this exercises the
// two-phase shard/server fan-out for races.
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/client_fleet.h"
#include "fleet/params.h"
#include "fleet/simulator.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace mntp {
namespace {

fleet::FleetParams base_params() {
  fleet::FleetParams p;
  p.clients = 20'000;
  p.duration_s = 30.0;
  p.shards = 16;
  p.seed = 7;
  return p;
}

fleet::FleetResult run_once(const fleet::FleetParams& p, std::size_t threads) {
  // Fresh telemetry per run so registry state never couples runs.
  obs::Telemetry tel;
  obs::ScopedTelemetry scope(tel);
  fleet::Simulator sim(
      std::make_shared<const fleet::ClientFleet>(fleet::ClientFleet::build(p)),
      p);
  return sim.run(threads);
}

TEST(FleetDeterminism, BitIdenticalAcrossThreadCounts) {
  const fleet::FleetParams p = base_params();
  const fleet::FleetResult serial = run_once(p, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const fleet::FleetResult threaded = run_once(p, threads);
    EXPECT_TRUE(serial.deterministic_equal(threaded))
        << "threads=" << threads;
    EXPECT_EQ(serial.owd.by_class[0][0], threaded.owd.by_class[0][0]);
    EXPECT_EQ(serial.owd.by_class[1][1], threaded.owd.by_class[1][1]);
    EXPECT_EQ(serial.owd.by_category[3], threaded.owd.by_category[3]);
  }
}

TEST(FleetDeterminism, BitIdenticalAcrossShardCounts) {
  // Client->shard assignment is id % shards, but per-query randomness is
  // keyed on (client root, id, poll time) — independent of which shard
  // processed it — and servers re-sort arrivals canonically. So any shard
  // count must yield the same result.
  fleet::FleetParams p = base_params();
  p.shards = 3;
  const fleet::FleetResult reference = run_once(p, 2);
  for (const std::size_t shards : {std::size_t{16}, std::size_t{64}}) {
    p.shards = shards;
    const fleet::FleetResult other = run_once(p, 2);
    EXPECT_TRUE(reference.deterministic_equal(other))
        << "shards=" << shards;
  }
}

TEST(FleetDeterminism, ThreadAndShardMatrixAgreesWithoutFastPaths) {
  // The exact (non-LUT, fine-grained OU) channel path must satisfy the
  // same contract: fast paths change values, never determinism.
  fleet::FleetParams p = base_params();
  p.clients = 5'000;
  p.use_snr_lut = false;
  p.coarse_ou_advance = false;
  const fleet::FleetResult reference = run_once(p, 1);
  p.shards = 5;
  const fleet::FleetResult other = run_once(p, 8);
  EXPECT_TRUE(reference.deterministic_equal(other));
}

TEST(FleetDeterminism, RegistryHistogramsMatchAcrossThreads) {
  // The obs-layer series (what telemetry sinks export) must merge to the
  // same histogram regardless of which worker recorded each sample.
  const fleet::FleetParams p = base_params();
  std::vector<obs::MetricSnapshot> merged;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    obs::Telemetry tel;
    obs::ScopedTelemetry scope(tel);
    fleet::Simulator sim(std::make_shared<const fleet::ClientFleet>(
                             fleet::ClientFleet::build(p)),
                         p);
    (void)sim.run(threads);
    // snapshot() iterates an ordered map, so series order is stable.
    for (obs::MetricSnapshot& m : tel.metrics().snapshot()) {
      if (m.name == "fleet.owd_ms") merged.push_back(std::move(m));
    }
  }
  ASSERT_EQ(merged.size(), 8U);  // 4 speaker x population series per run
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(merged[i].labels, merged[i + 4].labels) << "series " << i;
    EXPECT_EQ(merged[i].count, merged[i + 4].count) << "series " << i;
    EXPECT_EQ(merged[i].sum, merged[i + 4].sum) << "series " << i;
    EXPECT_EQ(merged[i].buckets, merged[i + 4].buckets) << "series " << i;
  }
}

}  // namespace
}  // namespace mntp
