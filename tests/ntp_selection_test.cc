#include "ntp/selection.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace mntp::ntp {
namespace {

using core::Duration;

PeerEstimate peer(double offset_ms, double rootdist_ms, double jitter_ms = 1.0) {
  PeerEstimate e;
  e.offset = Duration::from_millis(offset_ms);
  e.delay = Duration::from_millis(rootdist_ms);  // delay/2 + disp = rd
  e.dispersion = Duration::from_millis(rootdist_ms / 2.0);
  e.jitter_s = jitter_ms * 1e-3;
  return e;
}

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(Selection, EmptyInput) {
  EXPECT_TRUE(select_truechimers({}).empty());
}

TEST(Selection, SinglePeerSurvives) {
  const auto out = select_truechimers({peer(100, 10)});
  EXPECT_EQ(out, std::vector<std::size_t>{0});
}

TEST(Selection, AgreeingPeersAllSurvive) {
  const auto out =
      select_truechimers({peer(1, 10), peer(2, 10), peer(0, 10), peer(1.5, 10)});
  EXPECT_EQ(out.size(), 4u);
}

TEST(Selection, SingleFalseTickerExcluded) {
  // Three peers near zero, one at 350 ms with a tight interval.
  const auto out = select_truechimers(
      {peer(1, 10), peer(-2, 10), peer(2, 10), peer(350, 10)});
  EXPECT_EQ(out.size(), 3u);
  EXPECT_FALSE(contains(out, 3));
}

TEST(Selection, TwoFalseTickersOfFive) {
  const auto out = select_truechimers(
      {peer(350, 5), peer(0, 10), peer(1, 10), peer(-1, 10), peer(-400, 5)});
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(contains(out, 1));
  EXPECT_TRUE(contains(out, 2));
  EXPECT_TRUE(contains(out, 3));
}

TEST(Selection, NoMajorityMeansEmpty) {
  // Two far-apart tight cliques of equal size: no majority clique.
  const auto out = select_truechimers(
      {peer(0, 1), peer(1, 1), peer(500, 1), peer(501, 1)});
  EXPECT_TRUE(out.empty());
}

TEST(Selection, WideIntervalRescuesDisagreement) {
  // A peer far away but with a huge root distance still intersects.
  const auto out = select_truechimers(
      {peer(0, 5), peer(2, 5), peer(100, 200)});
  EXPECT_EQ(out.size(), 3u);
}

TEST(Cluster, KeepsAtLeastMinSurvivors) {
  std::vector<PeerEstimate> peers{peer(0, 10, 1), peer(1, 10, 1),
                                  peer(2, 10, 1), peer(50, 10, 1)};
  ClusterParams params;
  params.min_survivors = 3;
  const auto out = cluster_survivors(peers, {0, 1, 2, 3}, params);
  EXPECT_GE(out.size(), 3u);
}

TEST(Cluster, PrunesHighSelectionJitterOutlier) {
  // Peer 3 sits far from the cluster: its selection jitter dominates.
  std::vector<PeerEstimate> peers{peer(0, 10, 0.1), peer(0.2, 10, 0.1),
                                  peer(-0.2, 10, 0.1), peer(30, 10, 0.1)};
  ClusterParams params;
  params.min_survivors = 2;
  const auto out = cluster_survivors(peers, {0, 1, 2, 3}, params);
  EXPECT_FALSE(contains(out, 3));
}

TEST(Cluster, StopsWhenJitterBalanced) {
  // All peers tight: no pruning happens even with room to prune.
  std::vector<PeerEstimate> peers{peer(0, 10, 5), peer(0.5, 10, 5),
                                  peer(-0.5, 10, 5), peer(0.2, 10, 5)};
  ClusterParams params;
  params.min_survivors = 1;
  const auto out = cluster_survivors(peers, {0, 1, 2, 3}, params);
  EXPECT_EQ(out.size(), 4u);
}

TEST(Combine, ThrowsOnEmpty) {
  EXPECT_THROW((void)combine_offsets({peer(0, 1)}, {}), std::invalid_argument);
}

TEST(Combine, SinglePeerPassthrough) {
  const auto offset = combine_offsets({peer(42, 10)}, {0});
  EXPECT_NEAR(offset.to_millis(), 42.0, 1e-9);
}

TEST(Combine, WeightsByInverseRootDistance) {
  // Peer 0: offset 10 ms, rootdist 10 ms (weight 100).
  // Peer 1: offset 40 ms, rootdist 30 ms (weight 33.3).
  const auto offset = combine_offsets({peer(10, 10), peer(40, 30)}, {0, 1});
  const double w0 = 1.0 / 0.010, w1 = 1.0 / 0.030;
  const double expected = (w0 * 10.0 + w1 * 40.0) / (w0 + w1);
  EXPECT_NEAR(offset.to_millis(), expected, 0.01);
  // Closer to the low-root-distance peer.
  EXPECT_LT(offset.to_millis(), 25.0);
}

TEST(SelectionPipeline, EndToEndAgainstFalseTicker) {
  // The full mitigation: select -> cluster -> combine with one false
  // ticker; result lands near the honest cluster.
  std::vector<PeerEstimate> peers{peer(1.0, 12, 0.5), peer(-0.5, 15, 0.4),
                                  peer(0.2, 10, 0.3), peer(420, 8, 0.2)};
  auto chimers = select_truechimers(peers);
  ASSERT_FALSE(chimers.empty());
  EXPECT_FALSE(contains(chimers, 3));
  chimers = cluster_survivors(peers, std::move(chimers), {});
  const auto combined = combine_offsets(peers, chimers);
  EXPECT_LT(std::abs(combined.to_millis()), 2.0);
}

}  // namespace
}  // namespace mntp::ntp
