// Drift filter and false-ticker rejection tests — the heart of MNTP.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "mntp/drift_filter.h"
#include "mntp/false_ticker.h"

namespace mntp::protocol {
namespace {

using core::Duration;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

TEST(FalseTicker, FewerThanThreeAllSurvive) {
  EXPECT_EQ(reject_false_tickers(std::vector<double>{}).size(), 0u);
  EXPECT_EQ(reject_false_tickers(std::vector<double>{0.5}).size(), 1u);
  EXPECT_EQ(reject_false_tickers(std::vector<double>{0.5, -9.0}).size(), 2u);
}

TEST(FalseTicker, PositiveOutlierRejected) {
  const auto s = reject_false_tickers(std::vector<double>{0.001, 0.002, 0.350});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 1u);
}

TEST(FalseTicker, NegativeOutlierRejected) {
  const auto s = reject_false_tickers(std::vector<double>{0.001, -0.350, 0.002});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 2u);
}

TEST(FalseTicker, DegenerateGeometryKeepsAll) {
  // Two symmetric clusters: the sd gate would reject everything; the
  // fallback keeps all rather than stalling warm-up.
  const auto s = reject_false_tickers(std::vector<double>{-1.0, -1.0, 1.0, 1.0});
  EXPECT_EQ(s.size(), 4u);
}

TEST(FalseTicker, CombineAveragesSurvivors) {
  const std::vector<double> offsets{0.010, 0.020, 0.900};
  const auto s = reject_false_tickers(offsets);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(combine_surviving_offsets(offsets, s), 0.015, 1e-12);
}

TEST(FalseTicker, CombineThrowsOnEmpty) {
  const std::vector<double> offsets{1.0};
  EXPECT_THROW((void)combine_surviving_offsets(offsets, std::vector<std::size_t>{}),
               std::invalid_argument);
}

// ---- DriftFilter ----

TEST(DriftFilter, BootstrapAcceptsUnconditionally) {
  DriftFilter f({.bootstrap_samples = 5});
  for (int i = 0; i < 5; ++i) {
    const auto d = f.offer(at_s(i * 5.0), i == 2 ? 0.8 : 0.001 * i);
    EXPECT_TRUE(d.accepted);
    EXPECT_TRUE(d.bootstrap);
  }
  EXPECT_FALSE(f.bootstrapping());
}

TEST(DriftFilter, BootstrapCompletionIsLatched) {
  // Pruning at bootstrap end may drop samples below the bootstrap count;
  // the filter must not re-enter the unconditional-accept mode.
  DriftFilter f({.bootstrap_samples = 6});
  for (int i = 0; i < 5; ++i) (void)f.offer(at_s(i * 5.0), 0.0);
  (void)f.offer(at_s(25.0), 0.5);  // outlier inside bootstrap, pruned at end
  EXPECT_FALSE(f.bootstrapping());
  const auto d = f.offer(at_s(30.0), 0.4);
  EXPECT_FALSE(d.accepted);  // regular gate active despite pruning
}

TEST(DriftFilter, EstimatesDriftSlope) {
  DriftFilter f({.bootstrap_samples = 10});
  // -5.5 ppm drift sampled every 5 s over 10 minutes with small noise.
  core::Rng rng(1);
  for (int i = 0; i < 120; ++i) {
    (void)f.offer(at_s(i * 5.0), -5.5e-6 * i * 5.0 + rng.normal(0, 0.0002));
  }
  const auto drift = f.drift_s_per_s();
  ASSERT_TRUE(drift.has_value());
  EXPECT_NEAR(*drift * 1e6, -5.5, 0.5);  // in ppm
}

TEST(DriftFilter, RejectsTrendOutlier) {
  DriftFilter f({.bootstrap_samples = 10});
  for (int i = 0; i < 20; ++i) (void)f.offer(at_s(i * 5.0), 0.001);
  const auto d = f.offer(at_s(105.0), 0.300);
  EXPECT_FALSE(d.accepted);
  EXPECT_NEAR(d.residual_s, 0.299, 0.01);
  EXPECT_EQ(f.rejected_count(), 1u);
}

TEST(DriftFilter, AcceptsWithinBandSamples) {
  DriftFilter f({.bootstrap_samples = 10, .min_accept_band_s = 0.015});
  for (int i = 0; i < 20; ++i) (void)f.offer(at_s(i * 5.0), 0.0);
  const auto d = f.offer(at_s(105.0), 0.010);  // within the 15 ms floor
  EXPECT_TRUE(d.accepted);
}

TEST(DriftFilter, PredictsAlongTrend) {
  DriftFilter f({.bootstrap_samples = 5});
  for (int i = 0; i < 10; ++i) (void)f.offer(at_s(i * 10.0), 0.001 * i);
  const auto p = f.predict_s(at_s(200.0));
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 0.020, 1e-4);
}

TEST(DriftFilter, ReestimationTracksChangingSkew) {
  // Slope changes midway; with per-sample re-estimation the filter keeps
  // accepting, without it the gate eventually rejects the new regime.
  auto run = [](bool reestimate) {
    DriftFilter f({.bootstrap_samples = 10,
                   .reestimate_each_sample = reestimate,
                   .stats_window = 20,
                   .min_accept_band_s = 0.005});
    std::size_t rejected = 0;
    double offset = 0.0;
    for (int i = 0; i < 200; ++i) {
      const double slope = i < 60 ? 2e-6 : 30e-6;  // skew regime change
      offset += slope * 5.0;
      if (!f.offer(at_s(i * 5.0), offset).accepted) ++rejected;
    }
    return rejected;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(DriftFilter, HasPredictionDistinguishesZeroCrossingFromNoTrend) {
  // A trend through (0 s, +1) and (2 s, -1) predicts exactly 0.0 at
  // t = 1 s; the decision must still say has_prediction so callers do
  // not mistake it for "no trend yet".
  DriftFilter f({.bootstrap_samples = 2});
  const auto d0 = f.offer(at_s(0.0), 1.0);
  EXPECT_TRUE(d0.accepted);
  EXPECT_FALSE(d0.has_prediction);  // no fit exists before 2 samples
  (void)f.offer(at_s(2.0), -1.0);
  const auto d = f.offer(at_s(1.0), 0.5);
  EXPECT_TRUE(d.has_prediction);
  EXPECT_DOUBLE_EQ(d.predicted_s, 0.0);
  EXPECT_DOUBLE_EQ(d.residual_s, 0.5);
}

TEST(DriftFilter, ConsecutiveRejectionEscapeRecoversRunawayTrend) {
  // Regression for rejection starvation: a trend mis-fitted from a
  // short noisy bootstrap (here a spurious 2000 ppm slope) rejects
  // every later sample, and because the gate statistics only see
  // accepted samples, nothing ever corrects it. The escape hatch must
  // admit a sample after the configured run of rejections, after which
  // the fit re-converges and normal acceptance resumes.
  DriftFilter f({.bootstrap_samples = 4, .max_consecutive_rejections = 4});
  for (int i = 0; i < 4; ++i) (void)f.offer(at_s(i * 5.0), 2e-3 * i * 5.0);
  // Reality: the clock is actually flat at zero offset.
  int forced = 0, accepted_normally = 0;
  for (int i = 0; i < 20; ++i) {
    const auto d = f.offer(at_s(100.0 + i * 5.0), 0.0);
    if (d.forced) ++forced;
    if (d.accepted && !d.forced) ++accepted_normally;
  }
  EXPECT_EQ(forced, 1);  // one forced admission, then the gate re-opens
  EXPECT_GE(accepted_normally, 10);
  // The stale bootstrap points still tilt the fit slightly, but the
  // 2000 ppm runaway is gone by an order of magnitude.
  const auto drift = f.drift_s_per_s();
  ASSERT_TRUE(drift.has_value());
  EXPECT_LT(std::fabs(*drift), 2e-4);
}

TEST(DriftFilter, EscapeHatchDisabledRejectsForever) {
  DriftFilter f({.bootstrap_samples = 4, .max_consecutive_rejections = 0});
  for (int i = 0; i < 4; ++i) (void)f.offer(at_s(i * 5.0), 2e-3 * i * 5.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(f.offer(at_s(100.0 + i * 5.0), 0.0).accepted);
  }
  EXPECT_EQ(f.rejected_count(), 20u);
}

TEST(DriftFilter, ResetClearsState) {
  DriftFilter f({.bootstrap_samples = 3});
  for (int i = 0; i < 5; ++i) (void)f.offer(at_s(i), 0.0);
  f.reset();
  EXPECT_TRUE(f.bootstrapping());
  EXPECT_EQ(f.accepted_count(), 0u);
  EXPECT_FALSE(f.drift_s_per_s().has_value());
  EXPECT_FALSE(f.predict_s(at_s(10)).has_value());
}

TEST(DriftFilter, PruneDropsBootstrapOutliers) {
  DriftFilter f({.bootstrap_samples = 12});
  for (int i = 0; i < 11; ++i) (void)f.offer(at_s(i * 5.0), 0.001);
  (void)f.offer(at_s(55.0), 0.700);  // 12th sample completes bootstrap
  // The 700 ms bootstrap outlier must not drag the trend: prediction
  // stays near 1 ms.
  const auto p = f.predict_s(at_s(60.0));
  ASSERT_TRUE(p.has_value());
  EXPECT_LT(std::fabs(*p - 0.001), 0.01);
}

TEST(DriftFilter, StatsWindowForgetsOldOutliers) {
  DriftFilter f({.bootstrap_samples = 10, .stats_window = 10,
                 .min_accept_band_s = 0.005});
  // Clean bootstrap, then a mildly noisy stretch, then verify a 50 ms
  // outlier is rejected even though the *bootstrap* had contained noise.
  core::Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    (void)f.offer(at_s(i * 5.0), rng.normal(0.0, 0.002));
  }
  const auto d = f.offer(at_s(301.0), 0.050);
  EXPECT_FALSE(d.accepted);
}

TEST(DriftFilter, MinimumTwoBootstrapSamples) {
  DriftFilter f({.bootstrap_samples = 0});  // clamped up to 2
  (void)f.offer(at_s(0), 0.0);
  EXPECT_TRUE(f.bootstrapping());
  (void)f.offer(at_s(5), 0.0);
  EXPECT_FALSE(f.bootstrapping());
}

}  // namespace
}  // namespace mntp::protocol
