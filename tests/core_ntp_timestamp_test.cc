#include "core/ntp_timestamp.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace mntp::core {
namespace {

TEST(NtpTimestamp, UnsetIsZero) {
  EXPECT_TRUE(NtpTimestamp::unset().is_unset());
  EXPECT_FALSE(NtpTimestamp::from_parts(1, 0).is_unset());
}

TEST(NtpTimestamp, PartsRoundTrip) {
  const auto t = NtpTimestamp::from_parts(0x01234567, 0x89ABCDEF);
  EXPECT_EQ(t.seconds(), 0x01234567u);
  EXPECT_EQ(t.fraction(), 0x89ABCDEFu);
  EXPECT_EQ(t.raw(), 0x0123456789ABCDEFull);
  EXPECT_EQ(NtpTimestamp::from_raw(t.raw()), t);
}

TEST(NtpTimestamp, EpochMapsToSimEpoch) {
  const auto t = NtpTimestamp::from_time_point(TimePoint::epoch());
  EXPECT_EQ(t.seconds(), kSimEpochNtpSeconds);
  EXPECT_EQ(t.fraction(), 0u);
  EXPECT_EQ(t.to_time_point(), TimePoint::epoch());
}

TEST(NtpTimestamp, FractionResolution) {
  // Half a second is exactly 2^31 fraction units.
  const auto t = NtpTimestamp::from_time_point(TimePoint::epoch() +
                                               Duration::milliseconds(500));
  EXPECT_EQ(t.fraction(), 0x80000000u);
}

TEST(NtpTimestamp, DifferenceIsSigned) {
  const auto a = NtpTimestamp::from_time_point(TimePoint::epoch() +
                                               Duration::milliseconds(100));
  const auto b = NtpTimestamp::from_time_point(TimePoint::epoch() +
                                               Duration::milliseconds(250));
  EXPECT_NEAR((b - a).to_millis(), 150.0, 1e-3);
  EXPECT_NEAR((a - b).to_millis(), -150.0, 1e-3);
}

TEST(NtpTimestamp, NegativeSimTime) {
  const TimePoint t = TimePoint::epoch() - Duration::milliseconds(1500);
  const auto ts = NtpTimestamp::from_time_point(t);
  const TimePoint back = ts.to_time_point();
  EXPECT_LE((back - t).abs().ns(), 2);
}

TEST(NtpTimestamp, ToStringFormat) {
  const auto t = NtpTimestamp::from_parts(123, 0x80000000u);
  EXPECT_EQ(t.to_string(), "123.500000");
}

TEST(NtpTimestampProperty, TimePointRoundTripWithinOneNanosecond) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto t = TimePoint::from_ns(rng.uniform_int(0, 86'400'000'000'000LL));
    const TimePoint back = NtpTimestamp::from_time_point(t).to_time_point();
    ASSERT_LE((back - t).abs().ns(), 1) << "t=" << t.ns();
  }
}

TEST(NtpTimestampProperty, DifferenceMatchesTimePointDifference) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto a = TimePoint::from_ns(rng.uniform_int(0, 3'600'000'000'000LL));
    const auto b = TimePoint::from_ns(rng.uniform_int(0, 3'600'000'000'000LL));
    const Duration via_ntp =
        NtpTimestamp::from_time_point(b) - NtpTimestamp::from_time_point(a);
    ASSERT_NEAR(via_ntp.to_seconds(), (b - a).to_seconds(), 2e-9);
  }
}

TEST(NtpShort, RoundTrip) {
  const auto s = NtpShort::from_duration(Duration::milliseconds(125));
  EXPECT_NEAR(s.to_duration().to_millis(), 125.0, 0.02);
}

TEST(NtpShort, PartsAccessors) {
  const auto s = NtpShort::from_raw(0x00018000u);  // 1.5 s
  EXPECT_EQ(s.seconds(), 1u);
  EXPECT_EQ(s.fraction(), 0x8000u);
  EXPECT_DOUBLE_EQ(s.to_duration().to_seconds(), 1.5);
}

TEST(NtpShort, NegativeClampsToZero) {
  EXPECT_EQ(NtpShort::from_duration(Duration::milliseconds(-5)).raw(), 0u);
}

TEST(NtpShort, SaturatesAtFormatMax) {
  EXPECT_EQ(NtpShort::from_duration(Duration::hours(48)).raw(), 0xFFFFFFFFu);
}

TEST(NtpShortProperty, RoundTripWithin16Microseconds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = Duration::nanoseconds(rng.uniform_int(0, 60'000'000'000LL));
    const Duration back = NtpShort::from_duration(d).to_duration();
    // 16.16 resolution is ~15.3 us.
    ASSERT_LE((back - d).abs().to_micros(), 16.0);
  }
}

}  // namespace
}  // namespace mntp::core
