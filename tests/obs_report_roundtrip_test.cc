// Round-trip check for the run-report JSONL writer (obs/report.h): build
// a populated Telemetry + trace, serialize with write_run_report, parse
// every line back with core::Json and verify the schema contract the
// Python validator and mntp-inspect both rely on.
#include "obs/report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace_event.h"

namespace mntp::obs {
namespace {

std::vector<core::Json> parse_lines(const std::string& text) {
  std::vector<core::Json> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = core::Json::parse(line);
    EXPECT_TRUE(parsed.ok()) << "bad JSONL line: " << line;
    if (parsed.ok()) lines.push_back(parsed.value());
  }
  return lines;
}

struct ReportFixture {
  Telemetry telemetry;
  RingBufferSink trace;

  ReportFixture() {
    telemetry.add_sink(&trace);
    telemetry.metrics().counter("test.requests")->inc(7);
    telemetry.metrics().gauge("test.depth", {{"queue", "main"}})->set(3.5);
    Histogram* h = telemetry.metrics().histogram("test.latency_ms");
    for (int i = 1; i <= 100; ++i) h->record(static_cast<double>(i));
    telemetry.event(core::TimePoint::from_ns(2'000), "test", "second",
                    {{"k", std::int64_t{42}}});
    telemetry.event(core::TimePoint::from_ns(1'000), "test", "first",
                    {{"label", std::string("hi \"there\"")},
                     {"ratio", 0.25},
                     {"flag", true}});
  }

  [[nodiscard]] std::vector<core::Json> write() const {
    std::ostringstream out;
    write_run_report(out, telemetry, &trace,
                     ReportOptions{.run_name = "roundtrip",
                                   .sim_end = core::TimePoint::from_ns(9'000)});
    return parse_lines(out.str());
  }
};

TEST(ReportRoundtrip, MetaLineLeadsAndCountsMatch) {
  ReportFixture fx;
  const auto lines = fx.write();
  ASSERT_FALSE(lines.empty());
  const core::Json& meta = lines[0];
  EXPECT_EQ(meta["type"].as_string(), "meta");
  EXPECT_EQ(meta["schema_version"].as_int(), 1);
  EXPECT_EQ(meta["run"].as_string(), "roundtrip");
  EXPECT_EQ(meta["sim_end_ns"].as_int(), 9'000);

  std::int64_t metric_lines = 0, event_lines = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& type = lines[i]["type"].as_string();
    if (type == "metric") ++metric_lines;
    if (type == "event") ++event_lines;
  }
  EXPECT_EQ(meta["metric_count"].as_int(), metric_lines);
  EXPECT_EQ(meta["event_count"].as_int(), event_lines);
  EXPECT_EQ(metric_lines, 3);
  EXPECT_EQ(event_lines, 2);
}

TEST(ReportRoundtrip, ScalarMetricValuesSurvive) {
  ReportFixture fx;
  bool saw_counter = false, saw_gauge = false;
  for (const core::Json& line : fx.write()) {
    if (line["type"].as_string() != "metric") continue;
    if (line["name"].as_string() == "test.requests") {
      saw_counter = true;
      EXPECT_EQ(line["kind"].as_string(), "counter");
      EXPECT_EQ(line["value"].as_int(), 7);
    }
    if (line["name"].as_string() == "test.depth") {
      saw_gauge = true;
      EXPECT_EQ(line["kind"].as_string(), "gauge");
      EXPECT_EQ(line["value"].as_double(), 3.5);
      EXPECT_EQ(line["labels"]["queue"].as_string(), "main");
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST(ReportRoundtrip, HistogramLineCarriesSummaryAndBuckets) {
  ReportFixture fx;
  bool saw = false;
  for (const core::Json& line : fx.write()) {
    if (line["type"].as_string() != "metric" ||
        line["name"].as_string() != "test.latency_ms") {
      continue;
    }
    saw = true;
    EXPECT_EQ(line["kind"].as_string(), "histogram");
    EXPECT_EQ(line["count"].as_int(), 100);
    EXPECT_EQ(line["sum"].as_double(), 5050.0);
    EXPECT_EQ(line["min"].as_double(), 1.0);
    EXPECT_EQ(line["max"].as_double(), 100.0);
    EXPECT_GT(line["p50"].as_double(), 0.0);
    EXPECT_GE(line["p99"].as_double(), line["p90"].as_double());
    const auto& buckets = line["buckets"].as_array();
    ASSERT_FALSE(buckets.empty());
    EXPECT_EQ(buckets.back()["le"].as_string(), "inf");
    std::int64_t in_buckets = 0;
    for (const core::Json& b : buckets) {
      EXPECT_GE(b["count"].as_int(), 0);
      in_buckets += b["count"].as_int();
    }
    EXPECT_EQ(in_buckets, 100);  // per-bucket counts partition the samples
  }
  EXPECT_TRUE(saw);
}

TEST(ReportRoundtrip, EventsAscendBySimTimeAndFieldsRoundTrip) {
  ReportFixture fx;
  std::vector<core::Json> events;
  for (const core::Json& line : fx.write()) {
    if (line["type"].as_string() == "event") events.push_back(line);
  }
  ASSERT_EQ(events.size(), 2u);
  // Emitted out of order (t=2000 then t=1000); the report sorts by t_ns.
  EXPECT_EQ(events[0]["t_ns"].as_int(), 1'000);
  EXPECT_EQ(events[1]["t_ns"].as_int(), 2'000);
  EXPECT_EQ(events[0]["category"].as_string(), "test");
  EXPECT_EQ(events[0]["name"].as_string(), "first");
  EXPECT_EQ(events[0]["fields"]["label"].as_string(), "hi \"there\"");
  EXPECT_EQ(events[0]["fields"]["ratio"].as_double(), 0.25);
  EXPECT_TRUE(events[0]["fields"]["flag"].as_bool());
  EXPECT_EQ(events[1]["fields"]["k"].as_int(), 42);
}

TEST(ReportRoundtrip, MetricLinesAreNameSorted) {
  ReportFixture fx;
  std::vector<std::string> names;
  for (const core::Json& line : fx.write()) {
    if (line["type"].as_string() == "metric") {
      names.push_back(line["name"].as_string());
    }
  }
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ReportRoundtrip, ProfilerExportAppearsAsSpanGauges) {
  ReportFixture fx;
  fx.telemetry.profiler().set_enabled(true);
  {
    ScopedTelemetry scope(fx.telemetry);
    ProfileScope span("test.report_span");
  }
  fx.telemetry.profiler().export_to_metrics(fx.telemetry.metrics());
  bool saw_count = false;
  for (const core::Json& line : fx.write()) {
    if (line["type"].as_string() != "metric") continue;
    if (line["name"].as_string() == "profile.span.count" &&
        line["labels"]["span"].as_string() == "test.report_span") {
      saw_count = true;
      EXPECT_EQ(line["kind"].as_string(), "gauge");
      EXPECT_EQ(line["value"].as_int(), 1);
    }
  }
  EXPECT_TRUE(saw_count);
}

TEST(ReportRoundtrip, WithoutTraceSinkReportHasNoEventLines) {
  Telemetry telemetry;
  telemetry.metrics().counter("test.only")->inc();
  std::ostringstream out;
  write_run_report(out, telemetry, nullptr, ReportOptions{});
  const auto lines = parse_lines(out.str());
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0]["event_count"].as_int(), 0);
  for (const core::Json& line : lines) {
    EXPECT_NE(line["type"].as_string(), "event");
  }
}

}  // namespace
}  // namespace mntp::obs
