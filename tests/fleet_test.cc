// Fleet layer unit tests: SmallRng stream contract, the shared SNR LUT
// error bound, population build calibration, and the simulator's
// conservation / mechanism invariants.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "fleet/client_fleet.h"
#include "fleet/params.h"
#include "fleet/report.h"
#include "fleet/simulator.h"
#include "net/snr_lut.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace mntp {
namespace {

TEST(SmallRng, DrawKIsDeriveStreamSeedOfK) {
  core::SmallRng rng(0xDEADBEEFULL);
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(rng.next_u64(), core::derive_stream_seed(0xDEADBEEFULL, k));
  }
}

TEST(SmallRng, CanonicalIsInUnitInterval) {
  core::SmallRng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.canonical();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SmallRng, NormalMomentsMatch) {
  core::SmallRng rng(11);
  constexpr int kN = 200'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(SmallRng, ParetoRespectsScaleAndTailClamp) {
  core::SmallRng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.pareto(1.0, 4.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, std::pow(2.0, 53.0 / 4.0));
  }
}

TEST(SnrFailureLut, InterpolationErrorWithinBound) {
  const double snr50 = 8.0;
  const double slope = 2.2;
  const net::SnrFailureLut lut = net::SnrFailureLut::build(snr50, slope);
  ASSERT_FALSE(lut.empty());
  for (double snr = snr50 - 19.0 * slope; snr <= snr50 + 19.0 * slope;
       snr += 0.013) {
    const double exact = 1.0 / (1.0 + std::exp((snr - snr50) / slope));
    EXPECT_NEAR(lut(snr), exact, 1e-5) << "snr=" << snr;
  }
}

TEST(SnrFailureLut, EmptyTableFallsBackToExactLogistic) {
  const net::SnrFailureLut empty;
  EXPECT_TRUE(empty.empty());
  // Default-constructed midpoint/slope (0, 1).
  EXPECT_NEAR(empty(0.0), 0.5, 1e-12);
}

fleet::FleetParams small_params() {
  fleet::FleetParams p;
  p.clients = 20'000;
  p.duration_s = 30.0;
  p.shards = 8;
  p.seed = 42;
  return p;
}

TEST(ClientFleet, BuildMatchesPopulationTargets) {
  const fleet::FleetParams p = small_params();
  const fleet::ClientFleet fleet = fleet::ClientFleet::build(p);
  ASSERT_EQ(fleet.size(), p.clients);
  EXPECT_EQ(fleet.sntp_clients() + fleet.ntp_clients(), p.clients);
  EXPECT_EQ(fleet.wireless_clients() + fleet.wired_clients(), p.clients);
  // Most of the paper population speaks SNTP; both classes are present.
  EXPECT_GT(fleet.sntp_clients(), p.clients / 2);
  EXPECT_GT(fleet.ntp_clients(), 0U);
  EXPECT_GT(fleet.wireless_clients(), 0U);
  // Mobile-provider clients are always wireless.
  for (std::uint64_t i = 0; i < fleet.size(); ++i) {
    if (fleet.category(i) == logs::ProviderCategory::kMobile) {
      EXPECT_EQ(fleet.population(i), fleet::Population::kWireless);
    }
    EXPECT_GE(fleet.base_owd_ms()[i], 1.0F);
    EXPECT_LE(fleet.base_owd_ms()[i], 997.0F);
    EXPECT_LT(fleet.init_next_poll_ns()[i], fleet.init_interval_ns()[i]);
  }
}

TEST(ClientFleet, BuildIsDeterministic) {
  const fleet::FleetParams p = small_params();
  const fleet::ClientFleet a = fleet::ClientFleet::build(p);
  const fleet::ClientFleet b = fleet::ClientFleet::build(p);
  EXPECT_EQ(a.traits(), b.traits());
  EXPECT_EQ(a.server(), b.server());
  EXPECT_EQ(a.base_owd_ms(), b.base_owd_ms());
  EXPECT_EQ(a.init_next_poll_ns(), b.init_next_poll_ns());
}

TEST(Simulator, ConservationInvariantsHold) {
  obs::Telemetry tel;
  obs::ScopedTelemetry scope(tel);
  const fleet::FleetParams p = small_params();
  fleet::Simulator sim(
      std::make_shared<const fleet::ClientFleet>(fleet::ClientFleet::build(p)),
      p);
  const fleet::FleetResult r = sim.run(2);
  EXPECT_GT(r.queries, 0U);
  EXPECT_EQ(r.queries, r.arrived + r.dropped);
  std::uint64_t server_sum = 0;
  for (const std::uint64_t s : r.server_requests) server_sum += s;
  EXPECT_EQ(server_sum, r.arrived);
  EXPECT_EQ(r.cache_hits + r.cache_misses, r.arrived - r.kod);
  EXPECT_EQ(r.owd.valid + r.owd.invalid, r.arrived - r.kod);
  // Unsynchronized clients (6% of the population) produce out-of-window
  // measurements.
  EXPECT_GT(r.owd.invalid, 0U);
  // The histograms tally exactly the valid measurements.
  std::uint64_t class_count = 0;
  for (const auto& row : r.owd.by_class) {
    for (const auto& h : row) class_count += h.count();
  }
  std::uint64_t cat_count = 0;
  for (const auto& h : r.owd.by_category) cat_count += h.count();
  EXPECT_EQ(class_count, r.owd.valid);
  EXPECT_EQ(cat_count, r.owd.valid);
}

TEST(Simulator, RepeatedRunsAreIdentical) {
  obs::Telemetry tel;
  obs::ScopedTelemetry scope(tel);
  const fleet::FleetParams p = small_params();
  fleet::Simulator sim(
      std::make_shared<const fleet::ClientFleet>(fleet::ClientFleet::build(p)),
      p);
  const fleet::FleetResult a = sim.run(1);
  const fleet::FleetResult b = sim.run(1);
  EXPECT_TRUE(a.deterministic_equal(b));
}

TEST(Simulator, KodRateLimitTriggersAndBacksClientsOff) {
  obs::Telemetry tel;
  obs::ScopedTelemetry scope(tel);
  fleet::FleetParams p = small_params();
  p.kod_limit_per_slice = 10;  // tiny: nearly every server saturates
  // KoD backoff takes effect one poll late (the next poll is scheduled
  // at send time, before the KoD response lands), so give it room to
  // show up in the totals.
  p.duration_s = 150.0;
  fleet::Simulator sim(
      std::make_shared<const fleet::ClientFleet>(fleet::ClientFleet::build(p)),
      p);
  const fleet::FleetResult r = sim.run(1);
  EXPECT_GT(r.kod, 0U);
  EXPECT_EQ(r.cache_hits + r.cache_misses, r.arrived - r.kod);

  // Backoff reduces the query rate versus an unlimited run.
  fleet::FleetParams open = small_params();
  open.duration_s = 150.0;
  open.kod_limit_per_slice = 1'000'000;
  fleet::Simulator open_sim(std::make_shared<const fleet::ClientFleet>(
                                fleet::ClientFleet::build(open)),
                            open);
  const fleet::FleetResult r_open = open_sim.run(1);
  EXPECT_EQ(r_open.kod, 0U);
  EXPECT_LT(r.queries, r_open.queries);
}

TEST(Simulator, ResponseCacheHitRateTracksBucketSize) {
  obs::Telemetry tel;
  obs::ScopedTelemetry scope(tel);
  fleet::FleetParams coarse = small_params();
  coarse.cache_bucket_ms = 10'000.0;  // slices-long buckets: mostly hits
  fleet::Simulator coarse_sim(std::make_shared<const fleet::ClientFleet>(
                                  fleet::ClientFleet::build(coarse)),
                              coarse);
  const fleet::FleetResult r_coarse = coarse_sim.run(1);
  EXPECT_GT(r_coarse.cache_hits, r_coarse.cache_misses);

  fleet::FleetParams fine = small_params();
  fine.cache_bucket_ms = 0.001;  // microsecond buckets: mostly misses
  fleet::Simulator fine_sim(std::make_shared<const fleet::ClientFleet>(
                                fleet::ClientFleet::build(fine)),
                            fine);
  const fleet::FleetResult r_fine = fine_sim.run(1);
  EXPECT_GT(r_fine.cache_misses, r_fine.cache_hits);
}

TEST(Simulator, RejectsSliceLongerThanMinPoll) {
  fleet::FleetParams p = small_params();
  p.slice_s = 20.0;  // >= sntp_poll_min_s
  const auto fleet =
      std::make_shared<const fleet::ClientFleet>(fleet::ClientFleet::build(p));
  EXPECT_THROW(fleet::Simulator(fleet, p), std::invalid_argument);
}

TEST(FleetReport, RendersAndRoundTripsKeyFields) {
  obs::Telemetry tel;
  obs::ScopedTelemetry scope(tel);
  const fleet::FleetParams p = small_params();
  fleet::Simulator sim(
      std::make_shared<const fleet::ClientFleet>(fleet::ClientFleet::build(p)),
      p);
  const fleet::FleetResult r = sim.run(1);
  const std::string doc = fleet::render_fleet_report(p, r);
  EXPECT_NE(doc.find("\"kind\": \"mntp_fleet_report\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"qps_per_core\""), std::string::npos);
  EXPECT_NE(doc.find("\"category\": \"mobile\""), std::string::npos);
  EXPECT_NE(doc.find("\"speaker\": \"sntp\""), std::string::npos);
  EXPECT_NE(doc.find("\"id\": \"MW2\""), std::string::npos);
}

TEST(FleetMetrics, RegistryCountersMatchResultTotals) {
  obs::Telemetry tel;
  obs::ScopedTelemetry scope(tel);
  const fleet::FleetParams p = small_params();
  fleet::Simulator sim(
      std::make_shared<const fleet::ClientFleet>(fleet::ClientFleet::build(p)),
      p);
  const fleet::FleetResult r = sim.run(2);
  std::uint64_t queries = 0;
  std::uint64_t requests = 0;
  std::uint64_t invalid = 0;
  for (const obs::MetricSnapshot& m : tel.metrics().snapshot()) {
    if (m.kind != obs::MetricSnapshot::Kind::kCounter) continue;
    const auto v = static_cast<std::uint64_t>(m.value);
    if (m.name == "fleet.client.queries") queries += v;
    if (m.name == "fleet.server.requests") requests += v;
    if (m.name == "fleet.owd.invalid") invalid += v;
  }
  EXPECT_EQ(queries, r.queries);
  EXPECT_EQ(requests, r.arrived);
  EXPECT_EQ(invalid, r.owd.invalid);
}

}  // namespace
}  // namespace mntp
