// Parameterized property sweeps over the wireless channel model: the
// monotone relationships the MNTP evaluation rests on must hold across
// the parameter space, not just at the calibrated defaults.
#include <gtest/gtest.h>

#include <tuple>

#include "core/stats.h"
#include "net/wireless_channel.h"

namespace mntp::net {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

struct ChannelSample {
  double loss_rate = 0.0;
  double mean_delay_ms = 0.0;
  double p99_delay_ms = 0.0;
};

ChannelSample measure(const WirelessChannelParams& params, std::uint64_t seed,
                      double utilization = 0.0, int n = 20000) {
  WirelessChannel c(params, Rng(seed));
  c.set_utilization(utilization);
  std::size_t lost = 0;
  std::vector<double> delays;
  for (int i = 0; i < n; ++i) {
    const auto r = c.transmit_dir(at_s(i * 0.25), 76, true);
    if (r.delivered) {
      delays.push_back(r.delay.to_millis());
    } else {
      ++lost;
    }
  }
  ChannelSample s;
  s.loss_rate = static_cast<double>(lost) / n;
  if (!delays.empty()) {
    s.mean_delay_ms = core::summarize(delays).mean;
    s.p99_delay_ms = core::percentile(delays, 99);
  }
  return s;
}

// Sweep: more bad-state occupancy means strictly worse channel outcomes.
class BadOccupancySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BadOccupancySweep, MoreBadTimeMeansWorseDelivery) {
  const auto [good_s, bad_s] = GetParam();
  WirelessChannelParams mild;
  mild.mean_good_duration = Duration::seconds(good_s * 4);
  mild.mean_bad_duration = Duration::seconds(bad_s);
  WirelessChannelParams harsh = mild;
  harsh.mean_good_duration = Duration::seconds(good_s);
  harsh.mean_bad_duration = Duration::seconds(bad_s * 4);

  const ChannelSample a = measure(mild, 42);
  const ChannelSample b = measure(harsh, 42);
  EXPECT_GT(b.loss_rate, a.loss_rate);
  EXPECT_GT(b.mean_delay_ms, a.mean_delay_ms);
}

INSTANTIATE_TEST_SUITE_P(Sojourns, BadOccupancySweep,
                         ::testing::Values(std::make_tuple(30, 10),
                                           std::make_tuple(60, 5),
                                           std::make_tuple(20, 20)));

// Sweep: higher utilization means more queueing delay at every level.
class UtilizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilizationSweep, DelayMonotoneInLoad) {
  const double rho = GetParam();
  WirelessChannelParams p;
  p.mean_bad_duration = Duration::seconds(1);  // quiet channel: isolate queueing
  p.mean_good_duration = Duration::hours(10);
  const ChannelSample idle = measure(p, 7, 0.0);
  const ChannelSample busy = measure(p, 7, rho);
  EXPECT_GT(busy.mean_delay_ms, idle.mean_delay_ms) << "rho=" << rho;
  EXPECT_GT(busy.p99_delay_ms, idle.p99_delay_ms);
}

INSTANTIATE_TEST_SUITE_P(Loads, UtilizationSweep,
                         ::testing::Values(0.3, 0.6, 0.9));

// Sweep: raising transmit power improves SNR and with it delivery.
class TxPowerSweep : public ::testing::TestWithParam<double> {};

TEST_P(TxPowerSweep, PowerBuysDelivery) {
  const double low_dbm = GetParam();
  WirelessChannelParams p;
  // Marginal geometry so power matters.
  p.path_loss = core::Decibels{95.0};
  p.mean_bad_duration = Duration::seconds(1);
  p.mean_good_duration = Duration::hours(10);

  WirelessChannel weak(p, Rng(9));
  weak.set_tx_power(core::Dbm{low_dbm});
  WirelessChannel strong(p, Rng(9));
  strong.set_tx_power(core::Dbm{low_dbm + 8.0});

  std::size_t weak_lost = 0, strong_lost = 0;
  for (int i = 0; i < 20000; ++i) {
    if (!weak.transmit_dir(at_s(i * 0.25), 76, true).delivered) ++weak_lost;
    if (!strong.transmit_dir(at_s(i * 0.25), 76, true).delivered) ++strong_lost;
  }
  EXPECT_LT(strong_lost, weak_lost);
}

INSTANTIATE_TEST_SUITE_P(Powers, TxPowerSweep, ::testing::Values(8.0, 12.0, 16.0));

// The load-bearing correlation: across a broad parameter grid, instants
// the hints call favorable must always deliver better than unfavorable
// ones. This is the assumption MNTP's entire design rests on.
class GateCorrelationSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GateCorrelationSweep, FavorableBeatsUnfavorableEverywhere) {
  const auto [fade_db, spike_prob] = GetParam();
  WirelessChannelParams p;
  p.bad_extra_fade = core::Decibels{fade_db};
  p.bad_spike_probability = spike_prob;
  WirelessChannel c(p, Rng(11));
  c.set_utilization(0.4);

  const core::Dbm min_rssi{-75.0};
  const core::Dbm max_noise{-70.0};
  const core::Decibels min_margin{20.0};

  std::size_t fav_n = 0, fav_lost = 0, unfav_n = 0, unfav_lost = 0;
  for (int i = 0; i < 40000; ++i) {
    const TimePoint t = at_s(i * 0.25);
    const auto h = c.observe_hints(t);
    const bool favorable = h.rssi > min_rssi && h.noise < max_noise &&
                           h.snr_margin() >= min_margin;
    const auto r = c.transmit_dir(t, 76, true);
    if (favorable) {
      ++fav_n;
      fav_lost += r.delivered ? 0 : 1;
    } else {
      ++unfav_n;
      unfav_lost += r.delivered ? 0 : 1;
    }
  }
  ASSERT_GT(fav_n, 500u);
  ASSERT_GT(unfav_n, 500u);
  EXPECT_LT(static_cast<double>(fav_lost) / fav_n,
            static_cast<double>(unfav_lost) / unfav_n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GateCorrelationSweep,
    ::testing::Values(std::make_tuple(6.0, 0.3), std::make_tuple(10.0, 0.6),
                      std::make_tuple(14.0, 0.9), std::make_tuple(10.0, 0.1)));

}  // namespace
}  // namespace mntp::net
