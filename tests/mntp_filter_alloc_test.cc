// Allocation-count regression test for the per-round filter hot path:
// once warm (sample window at its bound, scratch buffers grown),
// DriftFilter::offer and ClockFilter::update must perform ZERO heap
// allocations — accepted samples, rejections, window eviction and the
// popcorn suppressor included. Uses the same global operator new/delete
// counting hook as sim_event_alloc_test.cc (one hook per test binary).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/rng.h"
#include "core/time.h"
#include "mntp/drift_filter.h"
#include "ntp/clock_filter.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Replace the global allocator with a counting passthrough. Linked only
// into this test binary; all overloads funnel through the same counter
// so any allocation path (sized, array, nothrow) is visible.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace mntp {
namespace {

TEST(FilterAllocation, DriftFilterOfferSteadyStateIsAllocationFree) {
  protocol::DriftFilter filter({.bootstrap_samples = 10,
                                .max_samples = 64,
                                .stats_window = 32});
  core::Rng rng(41);
  std::int64_t t = 0;
  const double slope = 40e-6;  // 40 ppm trend

  // Warmup: bootstrap, then fill past max_samples so the window-eviction
  // rebuild path is what every subsequent acceptance takes; scratch_sq_
  // and the sample vector reach their steady-state capacity here.
  for (int i = 0; i < 200; ++i) {
    t += 5'000'000'000;
    const auto now = core::TimePoint::from_ns(t);
    (void)filter.offer(now, slope * now.to_seconds() + rng.normal(0, 0.002));
  }
  ASSERT_EQ(filter.accepted_count(), 64u);

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int i = 0; i < 1'000; ++i) {
    t += 5'000'000'000;
    const auto now = core::TimePoint::from_ns(t);
    // Every 10th sample is a gross outlier: the rejection branch must be
    // just as allocation-free as the acceptance branch.
    const double noise = i % 10 == 9 ? 1.0 : rng.normal(0, 0.002);
    const auto d = filter.offer(now, slope * now.to_seconds() + noise);
    ++(d.accepted ? accepted : rejected);
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);

  EXPECT_EQ(news_after - news_before, 0u) << "DriftFilter::offer allocated";
  EXPECT_EQ(accepted, 900u);
  EXPECT_EQ(rejected, 100u);
}

TEST(FilterAllocation, ClockFilterUpdateSteadyStateIsAllocationFree) {
  ntp::ClockFilter filter({.stages = 8, .popcorn_gate = 3.0});
  core::Rng rng(42);
  std::int64_t t = 0;

  for (int i = 0; i < 64; ++i) {
    t += 1'000'000'000;
    (void)filter.update(core::Duration::from_seconds(rng.normal(0, 0.002)),
                        core::Duration::from_seconds(rng.uniform(0.01, 0.05)),
                        core::TimePoint::from_ns(t));
  }

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  std::size_t suppressed = 0;
  for (int i = 0; i < 1'000; ++i) {
    t += 1'000'000'000;
    // Every 16th sample is a popcorn spike: both the suppression branch
    // and the ring-buffer insert path must stay allocation-free.
    const double offset_s = i % 16 == 15 ? 0.5 : rng.normal(0, 0.002);
    const auto est =
        filter.update(core::Duration::from_seconds(offset_s),
                      core::Duration::from_seconds(rng.uniform(0.01, 0.05)),
                      core::TimePoint::from_ns(t));
    suppressed += est.has_value() ? 0 : 1;
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);

  EXPECT_EQ(news_after - news_before, 0u) << "ClockFilter::update allocated";
  EXPECT_GT(suppressed, 0u);
}

}  // namespace
}  // namespace mntp
