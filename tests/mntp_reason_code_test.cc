// Reason-code taxonomy tests plus golden decision-stage emission: the
// exact stage name, reason, and payload each decision point publishes is
// a contract consumed by scripts/check_telemetry_schema.py and
// `mntp-inspect explain` — drift must fail here, not in a dashboard.
#include "obs/reason_codes.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/time.h"
#include "mntp/drift_filter.h"
#include "mntp/engine.h"
#include "mntp/false_ticker.h"
#include "ntp/clock_filter.h"
#include "obs/query_trace.h"

namespace mntp::obs {
namespace {

using core::Duration;
using core::TimePoint;

TimePoint at(std::int64_t ns) { return TimePoint::from_ns(ns); }

TEST(ReasonCodes, ToStringIsClosedAndUnique) {
  std::set<std::string> seen;
  for (const Reason r : kAllReasons) {
    const std::string name(to_string(r));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate reason " << name;
  }
  EXPECT_EQ(seen.size(), std::size(kAllReasons));
  EXPECT_EQ(to_string(Reason::kChannelDefer), "channel_defer");
  EXPECT_EQ(to_string(Reason::kTrendOutlier), "trend_outlier");
  EXPECT_EQ(to_string(Reason::kFalseTicker), "false_ticker");
}

TEST(ReasonCodes, OutcomeMappingIsOneToOne) {
  using protocol::SampleOutcome;
  // 1:1 so the explain causation table reconciles exactly against the
  // mntp.sample outcome counters.
  EXPECT_EQ(protocol::to_reason(SampleOutcome::kAcceptedWarmup),
            Reason::kAcceptedWarmup);
  EXPECT_EQ(protocol::to_reason(SampleOutcome::kAcceptedRegular),
            Reason::kAcceptedRegular);
  EXPECT_EQ(protocol::to_reason(SampleOutcome::kRejectedFalseTicker),
            Reason::kFalseTicker);
  EXPECT_EQ(protocol::to_reason(SampleOutcome::kRejectedFilter),
            Reason::kTrendOutlier);
}

// ------------------------------------------------- golden stage payloads

/// Tracer with one traced query installed as the thread's ambient.
struct TracedFixture {
  QueryTracer tracer;
  QueryId id = 0;
  std::optional<ActiveQueryScope> scope;

  TracedFixture() {
    tracer.set_enabled(true);
    id = tracer.begin(at(0), "round");
    scope.emplace(tracer, id);
  }
  [[nodiscard]] std::vector<QueryStage> stages() const {
    const auto traces = tracer.snapshot();
    return traces.empty() ? std::vector<QueryStage>{} : traces[0].stages;
  }
};

double field_double(const QueryStage& s, const char* key) {
  for (const Field& f : s.fields) {
    if (f.key == key) return std::get<double>(f.value);
  }
  ADD_FAILURE() << "missing double field " << key;
  return 0.0;
}

std::int64_t field_int(const QueryStage& s, const char* key) {
  for (const Field& f : s.fields) {
    if (f.key == key) return std::get<std::int64_t>(f.value);
  }
  ADD_FAILURE() << "missing int field " << key;
  return 0;
}

std::string field_string(const QueryStage& s, const char* key) {
  for (const Field& f : s.fields) {
    if (f.key == key) return std::get<std::string>(f.value);
  }
  ADD_FAILURE() << "missing string field " << key;
  return {};
}

bool field_bool(const QueryStage& s, const char* key) {
  for (const Field& f : s.fields) {
    if (f.key == key) return std::get<bool>(f.value);
  }
  ADD_FAILURE() << "missing bool field " << key;
  return false;
}

TEST(GoldenStages, DriftFilterEmitsVerdictPerOffer) {
  TracedFixture fix;
  protocol::DriftFilter filter(
      protocol::DriftFilterConfig{.bootstrap_samples = 2});
  // Two bootstrap accepts, one on-trend accept, one far outlier.
  (void)filter.offer(at(0), 0.000);
  (void)filter.offer(at(10'000'000'000), 0.001);
  (void)filter.offer(at(20'000'000'000), 0.002);
  (void)filter.offer(at(30'000'000'000), 0.500);

  const auto stages = fix.stages();
  ASSERT_EQ(stages.size(), 4u);
  for (const QueryStage& s : stages) EXPECT_EQ(s.stage, "drift_filter");
  EXPECT_EQ(stages[0].reason, Reason::kOk);
  EXPECT_TRUE(field_bool(stages[0], "bootstrap"));
  EXPECT_EQ(stages[1].reason, Reason::kOk);
  EXPECT_TRUE(field_bool(stages[1], "bootstrap"));
  EXPECT_EQ(stages[2].reason, Reason::kOk);
  EXPECT_FALSE(field_bool(stages[2], "bootstrap"));
  // The regular-phase gate reports its threshold in the offset domain.
  EXPECT_GT(field_double(stages[2], "threshold_ms"), 0.0);
  EXPECT_EQ(stages[3].reason, Reason::kTrendOutlier);
  EXPECT_FALSE(field_bool(stages[3], "bootstrap"));
  // The rejected sample sits ~497 ms off a 0.1 ms/s trend.
  EXPECT_GT(field_double(stages[3], "residual_ms"), 400.0);
  EXPECT_GT(field_double(stages[3], "residual_ms"),
            field_double(stages[3], "threshold_ms"));
}

TEST(GoldenStages, FalseTickerEmitsVoteWithVotedOutIndices) {
  TracedFixture fix;
  const std::vector<double> offsets = {0.001, 0.002, 0.500};
  const auto survivors =
      protocol::reject_false_tickers(offsets, at(7'000'000'000));
  ASSERT_EQ(survivors, (std::vector<std::size_t>{0, 1}));

  const auto stages = fix.stages();
  ASSERT_EQ(stages.size(), 1u);
  const QueryStage& vote = stages[0];
  EXPECT_EQ(vote.stage, "false_ticker");
  EXPECT_EQ(vote.reason, Reason::kFalseTicker);
  EXPECT_EQ(vote.t, at(7'000'000'000));
  EXPECT_EQ(field_int(vote, "sources"), 3);
  EXPECT_EQ(field_int(vote, "rejected"), 1);
  EXPECT_EQ(field_string(vote, "voted_out"), "2");
  EXPECT_FALSE(field_bool(vote, "degenerate"));
  EXPECT_NEAR(field_double(vote, "mean_ms"), 167.667, 0.01);
  EXPECT_GT(field_double(vote, "sd_ms"), 0.0);
}

TEST(GoldenStages, FalseTickerUnanimousVoteReportsOk) {
  TracedFixture fix;
  // Agreeing sources: zero spread keeps every deviation inside one sd.
  const std::vector<double> offsets = {0.001, 0.001, 0.001};
  (void)protocol::reject_false_tickers(offsets, at(1));
  const auto stages = fix.stages();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].reason, Reason::kOk);
  EXPECT_EQ(field_int(stages[0], "rejected"), 0);
  EXPECT_EQ(field_string(stages[0], "voted_out"), "");
}

TEST(GoldenStages, ClockFilterEmitsPopcornSuppression) {
  TracedFixture fix;
  ntp::ClockFilterParams params;
  params.popcorn_gate = 2.0;  // gate = 2 x max(jitter, 5 ms floor) = 10 ms
  ntp::ClockFilter filter(params);
  ASSERT_TRUE(filter
                  .update(Duration::from_millis(1), Duration::from_millis(20),
                          at(1'000'000'000))
                  .has_value());
  // 50 ms jump against a 10 ms gate: swallowed by the suppressor.
  EXPECT_FALSE(filter
                   .update(Duration::from_millis(51),
                           Duration::from_millis(20), at(2'000'000'000))
                   .has_value());

  const auto stages = fix.stages();
  ASSERT_EQ(stages.size(), 1u);
  const QueryStage& s = stages[0];
  EXPECT_EQ(s.stage, "clock_filter");
  EXPECT_EQ(s.reason, Reason::kPopcornSuppressed);
  EXPECT_EQ(s.t, at(2'000'000'000));
  EXPECT_NEAR(field_double(s, "deviation_ms"), 50.0, 1e-9);
  EXPECT_NEAR(field_double(s, "gate_ms"), 10.0, 1e-9);
}

TEST(GoldenStages, NoAmbientQueryMeansNoStages) {
  // Decision points fire only on behalf of a traced query: with no
  // ambient installed they must leave the store untouched even when a
  // tracer exists and is enabled elsewhere on the thread.
  QueryTracer tracer;
  tracer.set_enabled(true);
  const QueryId id = tracer.begin(at(0), "round");
  protocol::DriftFilter filter(
      protocol::DriftFilterConfig{.bootstrap_samples = 2});
  (void)filter.offer(at(1), 0.001);
  (void)protocol::reject_false_tickers(std::vector<double>{0.1, 0.2, 0.9},
                                       at(2));
  const auto traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0].stages.empty());
  (void)id;
}

}  // namespace
}  // namespace mntp::obs
