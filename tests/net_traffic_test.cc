// Cross-traffic generator, pinger, and monitor controller tests.
#include <gtest/gtest.h>

#include "net/cross_traffic.h"
#include "net/monitor_controller.h"
#include "net/pinger.h"
#include "net/wired_link.h"
#include "net/wireless_channel.h"
#include "sim/simulation.h"

namespace mntp::net {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TEST(CrossTraffic, AlternatesIdleAndDownload) {
  sim::Simulation sim;
  WirelessChannel channel(WirelessChannelParams{}, Rng(1));
  CrossTrafficParams p;
  p.mean_idle = Duration::seconds(10);
  p.median_download = Duration::seconds(5);
  CrossTrafficGenerator gen(sim, channel, p, Rng(2));
  gen.start();
  sim.run_until(TimePoint::epoch() + Duration::minutes(30));
  EXPECT_GT(gen.downloads_completed(), 20u);
}

TEST(CrossTraffic, UtilizationHighDuringDownloadLowBetween) {
  sim::Simulation sim;
  WirelessChannel channel(WirelessChannelParams{}, Rng(3));
  CrossTrafficParams p;
  CrossTrafficGenerator gen(sim, channel, p, Rng(4));
  gen.start();
  bool saw_active = false, saw_idle = false;
  for (int i = 1; i <= 1200; ++i) {
    sim.run_until(TimePoint::epoch() + Duration::seconds(i));
    if (gen.download_active()) {
      saw_active = true;
      EXPECT_GE(channel.utilization(), p.min_utilization);
    } else {
      saw_idle = true;
      EXPECT_DOUBLE_EQ(channel.utilization(), p.idle_utilization);
    }
  }
  EXPECT_TRUE(saw_active);
  EXPECT_TRUE(saw_idle);
}

TEST(CrossTraffic, FrequencyScaleChangesDownloadRate) {
  auto downloads_with_scale = [](double scale) {
    sim::Simulation sim;
    WirelessChannel channel(WirelessChannelParams{}, Rng(5));
    CrossTrafficGenerator gen(sim, channel, CrossTrafficParams{}, Rng(6));
    gen.set_frequency_scale(scale);
    gen.start();
    sim.run_until(TimePoint::epoch() + Duration::hours(2));
    return gen.downloads_completed();
  };
  EXPECT_GT(downloads_with_scale(4.0), downloads_with_scale(0.5) * 2);
}

TEST(CrossTraffic, FrequencyScaleClamped) {
  sim::Simulation sim;
  WirelessChannel channel(WirelessChannelParams{}, Rng(7));
  CrossTrafficGenerator gen(sim, channel, CrossTrafficParams{}, Rng(8));
  gen.set_frequency_scale(1000.0);
  EXPECT_DOUBLE_EQ(gen.frequency_scale(), 20.0);
  gen.set_frequency_scale(0.0);
  EXPECT_DOUBLE_EQ(gen.frequency_scale(), 0.05);
}

TEST(CrossTraffic, StopRestoresIdleUtilization) {
  sim::Simulation sim;
  WirelessChannel channel(WirelessChannelParams{}, Rng(9));
  CrossTrafficParams p;
  CrossTrafficGenerator gen(sim, channel, p, Rng(10));
  gen.start();
  sim.run_until(TimePoint::epoch() + Duration::minutes(5));
  gen.stop();
  EXPECT_DOUBLE_EQ(channel.utilization(), p.idle_utilization);
  const auto completed = gen.downloads_completed();
  sim.run_until(TimePoint::epoch() + Duration::hours(1));
  EXPECT_EQ(gen.downloads_completed(), completed);
}

TEST(Pinger, MeasuresRttOverKnownLinks) {
  sim::Simulation sim;
  WiredLinkParams lp;
  lp.base_delay = Duration::milliseconds(10);
  lp.jitter_median = Duration::zero();
  lp.loss_probability = 0.0;
  lp.bytes_per_second = 0.0;
  WiredLink fwd(lp, Rng(11));
  WiredLink rev(lp, Rng(12));
  PingerParams pp;
  pp.interval = Duration::seconds(1);
  Pinger pinger(sim, LinkPath({&fwd}), LinkPath({&rev}), pp);
  pinger.start();
  sim.run_until(TimePoint::epoch() + Duration::seconds(30));
  const ProbeStats stats = pinger.stats();
  EXPECT_EQ(stats.losses, 0u);
  EXPECT_GT(stats.probes, 10u);
  EXPECT_NEAR(stats.mean_rtt.to_millis(), 20.0, 0.5);
  EXPECT_GE(pinger.total_sent(), 29u);
}

TEST(Pinger, RecordsLossesOnDeadLink) {
  sim::Simulation sim;
  WiredLinkParams lp;
  lp.loss_probability = 1.0;
  WiredLink dead(lp, Rng(13));
  WiredLink rev(WiredLinkParams::lan(), Rng(14));
  Pinger pinger(sim, LinkPath({&dead}), LinkPath({&rev}), PingerParams{});
  pinger.start();
  sim.run_until(TimePoint::epoch() + Duration::seconds(30));
  const ProbeStats stats = pinger.stats();
  EXPECT_EQ(stats.loss_fraction(), 1.0);
}

TEST(Pinger, WindowBoundsStats) {
  sim::Simulation sim;
  WiredLink fwd(WiredLinkParams::lan(), Rng(15));
  WiredLink rev(WiredLinkParams::lan(), Rng(16));
  PingerParams pp;
  pp.window = 5;
  Pinger pinger(sim, LinkPath({&fwd}), LinkPath({&rev}), pp);
  pinger.start();
  sim.run_until(TimePoint::epoch() + Duration::seconds(60));
  EXPECT_EQ(pinger.stats().probes, 5u);
}

TEST(MonitorController, RelievesUnderDistressAddsPressureWhenStable) {
  // Closed-loop smoke: run the full apparatus and verify the controller
  // took decisions in both directions (the channel oscillates).
  sim::Simulation sim;
  WirelessChannel channel(WirelessChannelParams{}, Rng(17));
  CrossTrafficGenerator traffic(sim, channel, CrossTrafficParams{}, Rng(18));
  WiredLink wan_up(WiredLinkParams::wan(Duration::milliseconds(8)), Rng(19));
  WiredLink wan_down(WiredLinkParams::wan(Duration::milliseconds(8)), Rng(20));
  Pinger pinger(sim, LinkPath({&channel.uplink(), &wan_up}),
                LinkPath({&wan_down, &channel.downlink()}), PingerParams{});
  MonitorController controller(sim, channel, traffic, pinger,
                               MonitorControllerParams{});
  traffic.start();
  pinger.start();
  controller.start();
  sim.run_until(TimePoint::epoch() + Duration::hours(1));
  EXPECT_GT(controller.ticks(), 300u);
  EXPECT_GT(controller.relieve_count(), 10u);
  EXPECT_GT(controller.pressure_count(), 10u);
}

TEST(MonitorController, TxPowerStaysWithinBounds) {
  sim::Simulation sim;
  WirelessChannel channel(WirelessChannelParams{}, Rng(21));
  CrossTrafficGenerator traffic(sim, channel, CrossTrafficParams{}, Rng(22));
  WiredLink wan_up(WiredLinkParams::wan(Duration::milliseconds(8)), Rng(23));
  WiredLink wan_down(WiredLinkParams::wan(Duration::milliseconds(8)), Rng(24));
  Pinger pinger(sim, LinkPath({&channel.uplink(), &wan_up}),
                LinkPath({&wan_down, &channel.downlink()}), PingerParams{});
  MonitorControllerParams mp;
  MonitorController controller(sim, channel, traffic, pinger, mp);
  traffic.start();
  pinger.start();
  controller.start();
  for (int m = 1; m <= 60; ++m) {
    sim.run_until(TimePoint::epoch() + Duration::minutes(m));
    ASSERT_GE(channel.tx_power().value(), mp.min_tx_power.value());
    ASSERT_LE(channel.tx_power().value(), mp.max_tx_power.value());
  }
}

}  // namespace
}  // namespace mntp::net
