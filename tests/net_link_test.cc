#include "net/link.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/stats.h"
#include "net/wired_link.h"
#include "sim/simulation.h"

namespace mntp::net {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

/// Test double: fixed delay, scripted drops, records query times.
class FakeLink final : public Link {
 public:
  explicit FakeLink(Duration delay, bool deliver = true)
      : delay_(delay), deliver_(deliver) {}

  TransmitResult transmit(TimePoint now, std::size_t bytes) override {
    queries.push_back(now);
    last_bytes = bytes;
    return {.delivered = deliver_, .delay = delay_};
  }

  std::vector<TimePoint> queries;
  std::size_t last_bytes = 0;

 private:
  Duration delay_;
  bool deliver_;
};

TEST(LinkPath, HopAccessors) {
  FakeLink a(Duration::milliseconds(1));
  FakeLink b(Duration::milliseconds(2));
  LinkPath path({&a, &b});
  EXPECT_EQ(path.hop_count(), 2u);
  EXPECT_EQ(&path.hop(0), &a);
  EXPECT_EQ(&path.hop(1), &b);
}

TEST(SendDatagram, DelaysAccumulateAndArrivalFires) {
  sim::Simulation sim;
  FakeLink a(Duration::milliseconds(10));
  FakeLink b(Duration::milliseconds(25));
  bool arrived = false;
  send_datagram(sim, LinkPath({&a, &b}), 48, [&](TimePoint t) {
    arrived = true;
    EXPECT_EQ(t, TimePoint::epoch() + Duration::milliseconds(35));
  });
  sim.run();
  EXPECT_TRUE(arrived);
  EXPECT_EQ(a.last_bytes, 48u);
  EXPECT_EQ(b.last_bytes, 48u);
}

TEST(SendDatagram, EachHopQueriedAtItsArrivalTime) {
  // The stateful-link contract: hop N is evaluated at the packet's
  // arrival time at hop N, not at send time.
  sim::Simulation sim;
  FakeLink a(Duration::milliseconds(10));
  FakeLink b(Duration::milliseconds(25));
  FakeLink c(Duration::milliseconds(5));
  send_datagram(sim, LinkPath({&a, &b, &c}), 1, [](TimePoint) {});
  sim.run();
  ASSERT_EQ(a.queries.size(), 1u);
  ASSERT_EQ(b.queries.size(), 1u);
  ASSERT_EQ(c.queries.size(), 1u);
  EXPECT_EQ(a.queries[0], TimePoint::epoch());
  EXPECT_EQ(b.queries[0], TimePoint::epoch() + Duration::milliseconds(10));
  EXPECT_EQ(c.queries[0], TimePoint::epoch() + Duration::milliseconds(35));
}

TEST(SendDatagram, DropInvokesOnDropOnce) {
  sim::Simulation sim;
  FakeLink a(Duration::milliseconds(10));
  FakeLink dead(Duration::zero(), /*deliver=*/false);
  FakeLink c(Duration::milliseconds(5));
  int arrivals = 0, drops = 0;
  send_datagram(
      sim, LinkPath({&a, &dead, &c}), 1, [&](TimePoint) { ++arrivals; },
      [&] { ++drops; });
  sim.run();
  EXPECT_EQ(arrivals, 0);
  EXPECT_EQ(drops, 1);
  EXPECT_TRUE(c.queries.empty());  // never reached hop 3
}

TEST(SendDatagram, EmptyPathDeliversImmediately) {
  sim::Simulation sim;
  bool arrived = false;
  send_datagram(sim, LinkPath{}, 1, [&](TimePoint t) {
    arrived = true;
    EXPECT_EQ(t, TimePoint::epoch());
  });
  sim.run();
  EXPECT_TRUE(arrived);
}

TEST(SendDatagram, MissingOnDropIsSafe) {
  sim::Simulation sim;
  FakeLink dead(Duration::zero(), false);
  send_datagram(sim, LinkPath({&dead}), 1, [](TimePoint) { FAIL(); });
  sim.run();  // no crash
}

TEST(WiredLink, DelayAboveBase) {
  WiredLinkParams p = WiredLinkParams::wan(Duration::milliseconds(20));
  p.loss_probability = 0.0;
  WiredLink link(p, Rng(3));
  for (int i = 0; i < 200; ++i) {
    const TransmitResult r = link.transmit(TimePoint::epoch(), 76);
    ASSERT_TRUE(r.delivered);
    ASSERT_GE(r.delay, p.base_delay);
  }
}

TEST(WiredLink, LossRateApproximatesParameter) {
  WiredLinkParams p = WiredLinkParams::lan();
  p.loss_probability = 0.2;
  WiredLink link(p, Rng(4));
  int lost = 0;
  for (int i = 0; i < 5000; ++i) {
    if (!link.transmit(TimePoint::epoch(), 1).delivered) ++lost;
  }
  EXPECT_NEAR(lost / 5000.0, 0.2, 0.03);
}

TEST(WiredLink, SerializationScalesWithBytes) {
  WiredLinkParams p;
  p.base_delay = Duration::zero();
  p.jitter_median = Duration::zero();
  p.loss_probability = 0.0;
  p.bytes_per_second = 1e6;  // 1 MB/s
  WiredLink link(p, Rng(5));
  const TransmitResult r = link.transmit(TimePoint::epoch(), 500'000);
  EXPECT_NEAR(r.delay.to_seconds(), 0.5, 1e-9);
}

TEST(WiredLink, RejectsBadLossProbability) {
  WiredLinkParams p;
  p.loss_probability = 1.5;
  EXPECT_THROW(WiredLink(p, Rng(1)), std::invalid_argument);
}

TEST(WiredLink, LanPresetIsSubMillisecond) {
  WiredLink link(WiredLinkParams::lan(), Rng(6));
  core::RunningStats delays;
  for (int i = 0; i < 500; ++i) {
    const auto r = link.transmit(TimePoint::epoch(), 76);
    if (r.delivered) delays.add(r.delay.to_millis());
  }
  EXPECT_LT(delays.mean(), 1.0);
}

}  // namespace
}  // namespace mntp::net
