// Device policy, NITZ, and device-simulation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "device/device_sim.h"
#include "device/nitz.h"
#include "device/policies.h"
#include "sim/simulation.h"

namespace mntp::device {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TEST(Policies, AndroidDefaultsMatchPaper) {
  const DevicePolicy p = android_policy();
  EXPECT_EQ(p.sntp.poll_interval, Duration::hours(24));
  EXPECT_EQ(p.sntp.retries, 3);
  EXPECT_TRUE(p.sntp.update_clock);
  EXPECT_EQ(p.sntp.update_threshold, Duration::milliseconds(5000));
  EXPECT_TRUE(p.use_nitz);
}

TEST(Policies, WindowsMobileDefaultsMatchPaper) {
  const DevicePolicy p = windows_mobile_policy();
  EXPECT_EQ(p.sntp.poll_interval, Duration::hours(24 * 7));
  EXPECT_EQ(p.sntp.retries, 0);
  EXPECT_FALSE(p.use_nitz);
}

TEST(Policies, LabPolicyReportsOnly) {
  const DevicePolicy p = lab_policy();
  EXPECT_EQ(p.sntp.poll_interval, Duration::seconds(5));
  EXPECT_FALSE(p.sntp.update_clock);
}

TEST(Nitz, FixesCorrectTheClock) {
  Rng rng(1);
  sim::Simulation sim;
  sim::DisciplinedClock clock(
      sim::OscillatorParams{.initial_offset_s = 3.0}, rng.fork());
  NitzParams params;
  params.mean_crossing_interval = Duration::minutes(30);
  params.fix_error_bound = Duration::milliseconds(500);
  NitzSource nitz(sim, clock, params, rng.fork());
  nitz.start();
  sim.run_until(TimePoint::epoch() + Duration::hours(12));
  EXPECT_GT(nitz.fixes_delivered(), 5u);
  // After fixes the 3 s boot error collapses to the NITZ resolution.
  EXPECT_LT(std::abs(clock.offset_at(sim.now())), 0.5);
}

TEST(Nitz, StopCeasesFixes) {
  Rng rng(2);
  sim::Simulation sim;
  sim::DisciplinedClock clock(sim::OscillatorParams{}, rng.fork());
  NitzSource nitz(sim, clock, NitzParams{}, rng.fork());
  nitz.start();
  sim.run_until(TimePoint::epoch() + Duration::hours(100));
  nitz.stop();
  const auto fixes = nitz.fixes_delivered();
  sim.run_until(TimePoint::epoch() + Duration::hours(400));
  EXPECT_EQ(nitz.fixes_delivered(), fixes);
}

TEST(DeviceSim, AndroidThresholdLeavesResidualError) {
  DeviceSimConfig config;
  config.seed = 10;
  config.policy = android_policy();
  config.policy.use_nitz = false;  // isolate the SNTP path
  const DeviceSimResult r = run_device_simulation(config, Duration::hours(72));
  // Android corrects the 400 ms boot error? No: threshold is 5000 ms, so
  // the error persists and grows with skew (~1 ms/day at 12 ppm).
  EXPECT_GT(r.mean_abs_offset_ms, 200.0);
  EXPECT_GE(r.sntp_polls, 2u);
  EXPECT_EQ(r.clock_updates, 0u);
}

TEST(DeviceSim, AndroidStepsWhenErrorExceedsThreshold) {
  DeviceSimConfig config;
  config.seed = 11;
  config.policy = android_policy();
  config.policy.use_nitz = false;
  config.oscillator.initial_offset_s = 8.0;  // above the 5 s threshold
  const DeviceSimResult r = run_device_simulation(config, Duration::hours(48));
  EXPECT_GE(r.clock_updates, 1u);
  // The 8 s boot error was stepped out; what remains is inter-poll drift,
  // which stays below the 5 s update threshold by construction.
  EXPECT_LT(std::abs(r.offset_series.back().second), 5000.0);
}

TEST(DeviceSim, WindowsMobileDriftsBetweenWeeklyPolls) {
  DeviceSimConfig config;
  config.seed = 12;
  config.policy = windows_mobile_policy();
  config.oscillator.initial_offset_s = 0.0;
  config.oscillator.constant_skew_ppm = 12.0;
  const DeviceSimResult r = run_device_simulation(config, Duration::hours(24 * 6));
  // Six days at 12 ppm with no successful update in between: ~6 s drift.
  EXPECT_EQ(r.policy_name, "windows-mobile");
  EXPECT_GT(r.max_abs_offset_ms, 1000.0);
}

TEST(DeviceSim, NitzBoundsAndroidError) {
  DeviceSimConfig with_nitz;
  with_nitz.seed = 13;
  with_nitz.policy = android_policy();
  with_nitz.nitz.mean_crossing_interval = Duration::hours(6);
  const auto r_nitz = run_device_simulation(with_nitz, Duration::hours(72));

  DeviceSimConfig without = with_nitz;
  without.policy.use_nitz = false;
  const auto r_plain = run_device_simulation(without, Duration::hours(72));

  EXPECT_GT(r_nitz.nitz_fixes, 3u);
  EXPECT_EQ(r_plain.nitz_fixes, 0u);
  EXPECT_LT(r_nitz.mean_abs_offset_ms, r_plain.mean_abs_offset_ms);
}

TEST(DeviceSim, Deterministic) {
  DeviceSimConfig config;
  config.seed = 14;
  const auto a = run_device_simulation(config, Duration::hours(24));
  const auto b = run_device_simulation(config, Duration::hours(24));
  EXPECT_EQ(a.offset_series, b.offset_series);
  EXPECT_EQ(a.sntp_polls, b.sntp_polls);
}

TEST(DeviceSim, SamplesCoverTheSpan) {
  DeviceSimConfig config;
  config.seed = 15;
  config.sample_interval = Duration::hours(1);
  const auto r = run_device_simulation(config, Duration::hours(24));
  EXPECT_GE(r.offset_series.size(), 23u);
  EXPECT_LE(r.offset_series.size(), 25u);
}

}  // namespace
}  // namespace mntp::device
