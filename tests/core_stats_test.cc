#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"

namespace mntp::core {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example, population
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsBulk) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Percentile, SortedInterpolation) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 25), 17.5);
}

TEST(Percentile, UnsortedInputSorts) {
  const std::vector<double> xs{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Percentile, EmptyAndClamping) {
  EXPECT_EQ(percentile_sorted({}, 50), 0.0);
  const std::vector<double> xs{1, 2};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 150), 2.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Summarize, EmptyGivesZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Rmse, AgainstReference) {
  const std::vector<double> xs{3, -3, 3, -3};
  EXPECT_DOUBLE_EQ(rmse(xs), 3.0);
  EXPECT_DOUBLE_EQ(rmse(xs, 3.0), std::sqrt((0 + 36 + 0 + 36) / 4.0));
  EXPECT_EQ(rmse({}), 0.0);
}

TEST(MeanAbsMaxAbs, Basics) {
  const std::vector<double> xs{-4, 2, -1, 3};
  EXPECT_DOUBLE_EQ(mean_abs(xs), 2.5);
  EXPECT_DOUBLE_EQ(max_abs(xs), 4.0);
  EXPECT_EQ(mean_abs({}), 0.0);
  EXPECT_EQ(max_abs({}), 0.0);
}

TEST(Cdf, StepFunction) {
  const std::vector<double> xs{1, 2, 2, 3};
  const Cdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(Cdf, QuantileInverse) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  const Cdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
}

TEST(Cdf, CurveSpansRangeAndIsMonotone) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal(0, 5));
  const Cdf cdf(xs);
  const auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
    EXPECT_LT(curve[i - 1].first, curve[i].first);
  }
}

TEST(Cdf, EmptyBehaviour) {
  const Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.at(1.0), 0.0);
  EXPECT_TRUE(cdf.curve(10).empty());
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(9.0, 1.0, 3), std::invalid_argument);
}

// Property: summarize percentiles are monotone for random data.
class SummaryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummaryProperty, PercentilesMonotone) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.lognormal(0.0, 1.5));
  const Summary s = summarize(xs);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.stddev, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mntp::core
