#include "mntp/engine.h"

#include <gtest/gtest.h>

namespace mntp::protocol {
namespace {

using core::Duration;
using core::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_seconds(s);
}

MntpParams fast_params() {
  MntpParams p;
  p.warmup_period = Duration::minutes(2);
  p.warmup_wait_time = Duration::seconds(10);
  p.regular_wait_time = Duration::seconds(30);
  p.reset_period = Duration::hours(1);
  p.min_warmup_samples = 5;
  return p;
}

net::WirelessHints good_hints() {
  return {.when = TimePoint::epoch(),
          .rssi = core::Dbm{-60.0},
          .noise = core::Dbm{-92.0}};
}

net::WirelessHints bad_hints() {
  return {.when = TimePoint::epoch(),
          .rssi = core::Dbm{-80.0},
          .noise = core::Dbm{-65.0}};
}

TEST(HintThresholds, PaperBaselineValues) {
  const HintThresholds t;
  EXPECT_DOUBLE_EQ(t.min_rssi.value(), -75.0);
  EXPECT_DOUBLE_EQ(t.max_noise.value(), -70.0);
  EXPECT_DOUBLE_EQ(t.min_snr_margin.value(), 20.0);
}

TEST(HintThresholds, AllThreeConditionsRequired) {
  const HintThresholds t;
  EXPECT_TRUE(t.favorable(good_hints()));
  // RSSI fails.
  EXPECT_FALSE(t.favorable({.when = {}, .rssi = core::Dbm{-76.0},
                            .noise = core::Dbm{-99.0}}));
  // Noise fails.
  EXPECT_FALSE(t.favorable({.when = {}, .rssi = core::Dbm{-40.0},
                            .noise = core::Dbm{-65.0}}));
  // SNR margin fails (RSSI -72 > -75 ok, noise -88 < -70 ok, margin 16).
  EXPECT_FALSE(t.favorable({.when = {}, .rssi = core::Dbm{-72.0},
                            .noise = core::Dbm{-88.0}}));
}

TEST(MntpEngine, StartsInWarmupAndQueriesMultipleSources) {
  MntpEngine e(fast_params(), TimePoint::epoch());
  EXPECT_EQ(e.phase(), Phase::kWarmup);
  EXPECT_EQ(e.sources_to_query(), 3u);
  EXPECT_EQ(e.next_wait(), Duration::seconds(10));
}

TEST(MntpEngine, TransitionsToRegularAfterPeriodAndSamples) {
  MntpEngine e(fast_params(), TimePoint::epoch());
  double t = 0.0;
  bool completed = false;
  for (int i = 0; i < 20 && !completed; ++i) {
    const auto rr = e.on_round(at_s(t), {0.001, 0.002, 0.0});
    completed = rr.warmup_completed;
    t += 10.0;
  }
  EXPECT_TRUE(completed);
  EXPECT_EQ(e.phase(), Phase::kRegular);
  EXPECT_EQ(e.sources_to_query(), 1u);
  EXPECT_EQ(e.next_wait(), Duration::seconds(30));
  // Transition at >= warmup_period with >= 5 samples: t=120 earliest.
  EXPECT_GE(t, 120.0);
}

TEST(MntpEngine, WarmupWaitsForEnoughSamples) {
  // Feed empty rounds (all queries failed): warm-up must not complete
  // even long after the period elapses.
  MntpEngine e(fast_params(), TimePoint::epoch());
  for (int i = 0; i < 50; ++i) {
    const auto rr = e.on_round(at_s(i * 10.0), {});
    EXPECT_FALSE(rr.warmup_completed);
  }
  EXPECT_EQ(e.phase(), Phase::kWarmup);
}

TEST(MntpEngine, ResetPeriodRestartsCycle) {
  MntpParams p = fast_params();
  p.reset_period = Duration::minutes(10);
  MntpEngine e(p, TimePoint::epoch());
  double t = 0.0;
  // Drive through warm-up into regular.
  for (int i = 0; i < 15; ++i) {
    (void)e.on_round(at_s(t), {0.001, 0.0, 0.002});
    t += 10.0;
  }
  EXPECT_EQ(e.phase(), Phase::kRegular);
  // Jump past the reset period.
  const auto rr = e.on_round(at_s(601.0), {0.001});
  EXPECT_TRUE(rr.reset_occurred);
  EXPECT_EQ(e.phase(), Phase::kWarmup);
  EXPECT_EQ(e.resets(), 1u);
}

TEST(MntpEngine, FalseTickerRejectedInWarmupRound) {
  MntpEngine e(fast_params(), TimePoint::epoch());
  const auto rr = e.on_round(at_s(0), {0.001, 0.002, 0.350});
  EXPECT_TRUE(rr.accepted);
  // Combined offset excludes the 350 ms false ticker.
  EXPECT_NEAR(rr.offset_s, 0.0015, 1e-9);
}

TEST(MntpEngine, DeferralsCounted) {
  MntpEngine e(fast_params(), TimePoint::epoch());
  EXPECT_TRUE(e.gate(good_hints()));
  EXPECT_FALSE(e.gate(bad_hints()));
  e.note_deferral(at_s(1));
  e.note_deferral(at_s(2));
  EXPECT_EQ(e.deferrals(), 2u);
}

TEST(MntpEngine, HeadToHeadModeSkipsWarmupPhase) {
  MntpEngine e(head_to_head_params(), TimePoint::epoch());
  EXPECT_EQ(e.phase(), Phase::kRegular);
  EXPECT_EQ(e.sources_to_query(), 1u);
  EXPECT_EQ(e.next_wait(), Duration::seconds(5));
}

TEST(MntpEngine, RegularPhaseRejectsSpikes) {
  MntpEngine e(head_to_head_params(), TimePoint::epoch());
  double t = 0.0;
  for (int i = 0; i < 15; ++i) {  // bootstrap the filter
    (void)e.on_round(at_s(t), {0.002});
    t += 5.0;
  }
  const auto rr = e.on_round(at_s(t), {0.400});
  EXPECT_FALSE(rr.accepted);
  EXPECT_EQ(rr.outcome, SampleOutcome::kRejectedFilter);
  EXPECT_EQ(e.rejected_offsets_ms().size(), 1u);
}

TEST(MntpEngine, RecordsCarryPhaseAndOutcome) {
  MntpEngine e(fast_params(), TimePoint::epoch());
  (void)e.on_round(at_s(0), {0.001, 0.002, 0.003});
  ASSERT_EQ(e.records().size(), 1u);
  EXPECT_EQ(e.records()[0].phase, Phase::kWarmup);
  EXPECT_EQ(e.records()[0].outcome, SampleOutcome::kAcceptedWarmup);
  EXPECT_TRUE(e.records()[0].bootstrap);
  EXPECT_EQ(e.accepted_offsets_ms().size(), 1u);
  // Bootstrap acceptances carry no meaningful trend residual.
  EXPECT_EQ(e.corrected_offsets_ms().size(), 0u);
}

TEST(MntpEngine, ClockStepKeepsTrendConsistent) {
  // Drifting clock, driver steps it after each accepted regular sample;
  // the engine's uncorrected-domain trend must keep accepting.
  MntpParams p = head_to_head_params();
  p.apply_corrections_to_clock = true;
  MntpEngine e(p, TimePoint::epoch());
  double true_uncorrected = 0.0;
  double stepped = 0.0;
  std::size_t rejections = 0;
  for (int i = 0; i < 100; ++i) {
    true_uncorrected += 20e-6 * 5.0;  // 20 ppm drift per 5 s round
    const double measured = true_uncorrected - stepped;
    const auto rr = e.on_round(at_s(i * 5.0), {measured});
    if (rr.accepted && i > 20) {
      stepped += rr.offset_s;  // driver steps by the measured offset
      e.note_clock_step(rr.offset_s);
    }
    if (!rr.accepted) ++rejections;
  }
  EXPECT_EQ(rejections, 0u);
  const auto drift = e.drift_s_per_s();
  ASSERT_TRUE(drift.has_value());
  EXPECT_NEAR(*drift * 1e6, 20.0, 2.0);
}

TEST(MntpEngine, FrequencyCompensationTracked) {
  MntpParams p = head_to_head_params();
  MntpEngine e(p, TimePoint::epoch());
  for (int i = 0; i < 12; ++i) (void)e.on_round(at_s(i * 5.0), {0.0});
  // Driver trims the clock by +10 ppm at t=60: measured offsets start
  // decreasing by 10 us/s, but predictions must track.
  e.note_frequency_compensation(at_s(60.0), 10.0);
  for (int i = 12; i < 40; ++i) {
    const double t = i * 5.0;
    const double measured = -10e-6 * (t - 60.0);
    const auto rr = e.on_round(at_s(t), {measured});
    ASSERT_TRUE(rr.accepted) << "round " << i;
  }
  // Prediction of the *measured* offset includes the compensation.
  const auto pred = e.predict_offset_s(at_s(260.0));
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(*pred, -10e-6 * 200.0, 5e-4);
}

TEST(MntpEngine, EmptyRoundProducesNoRecord) {
  MntpEngine e(fast_params(), TimePoint::epoch());
  const auto rr = e.on_round(at_s(0), {});
  EXPECT_FALSE(rr.accepted);
  EXPECT_TRUE(e.records().empty());
  EXPECT_EQ(e.rounds(), 1u);
}

TEST(MntpEngine, RejectedSampleUsesResidualWhenTrendPredictsExactlyZero) {
  // Regression: corrected_s used to branch on the float sentinel
  // `predicted_s != 0.0`, so a rejected sample whose trend legitimately
  // predicted exactly 0.0 s fell back to the raw measured offset. Build
  // an *uncorrected-domain* trend crossing zero (a clock step shifts the
  // uncorrected domain away from the measured one so the two answers
  // differ) and check the residual is reported.
  MntpParams p = head_to_head_params();
  p.min_warmup_samples = 2;
  MntpEngine e(p, TimePoint::epoch());
  // The driver stepped the clock by -1 s before any round: uncorrected
  // offsets are measured + 1.
  e.note_clock_step(1.0);
  // Uncorrected trend through (0 s, 2.0) and (2 s, 1.0): slope -0.5,
  // predicts exactly 0.0 at t = 4 s.
  ASSERT_TRUE(e.on_round(at_s(0.0), {1.0}).accepted);
  ASSERT_TRUE(e.on_round(at_s(2.0), {0.0}).accepted);
  // Far-off sample at the zero crossing: rejected by the gate.
  const auto rr = e.on_round(at_s(4.0), {4.0});
  ASSERT_FALSE(rr.accepted);
  EXPECT_EQ(rr.outcome, SampleOutcome::kRejectedFilter);
  // Residual in the uncorrected domain: (4.0 + 1.0) - 0.0 = 5.0. The
  // sentinel bug reported the measured 4.0 instead.
  EXPECT_DOUBLE_EQ(rr.corrected_s, 5.0);
}

}  // namespace
}  // namespace mntp::protocol
