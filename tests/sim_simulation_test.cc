#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace mntp::sim {
namespace {

using core::Duration;
using core::TimePoint;

TEST(Simulation, NowAdvancesWithEvents) {
  Simulation sim;
  std::vector<double> times;
  sim.after(Duration::seconds(1), [&] { times.push_back(sim.now().to_seconds()); });
  sim.after(Duration::seconds(3), [&] { times.push_back(sim.now().to_seconds()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int ran = 0;
  sim.after(Duration::seconds(1), [&] { ++ran; });
  sim.after(Duration::seconds(5), [&] { ++ran; });
  sim.run_until(TimePoint::epoch() + Duration::seconds(2));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::seconds(2));
  sim.run_until(TimePoint::epoch() + Duration::seconds(10));
  EXPECT_EQ(ran, 2);
}

TEST(Simulation, EventAtDeadlineRuns) {
  Simulation sim;
  bool ran = false;
  sim.after(Duration::seconds(2), [&] { ran = true; });
  sim.run_until(TimePoint::epoch() + Duration::seconds(2));
  EXPECT_TRUE(ran);
}

// Regression tests for the run_until contract: now() always lands on the
// deadline (never short of it), even with an empty queue, and a deadline
// in the past is a no-op that leaves now() untouched.
TEST(Simulation, RunUntilAdvancesNowWithEmptyQueue) {
  Simulation sim;
  sim.run_until(TimePoint::epoch() + Duration::seconds(4));
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::seconds(4));
  EXPECT_EQ(sim.events_executed(), 0u);
  // Relative scheduling is anchored at the deadline just reached.
  double fired_at = -1.0;
  sim.after(Duration::seconds(1), [&] { fired_at = sim.now().to_seconds(); });
  sim.run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(Simulation, RunUntilAdvancesNowPastLastEvent) {
  Simulation sim;
  double fired_at = -1.0;
  sim.after(Duration::seconds(1), [&] { fired_at = sim.now().to_seconds(); });
  sim.after(Duration::seconds(9), [&] { fired_at = sim.now().to_seconds(); });
  sim.run_until(TimePoint::epoch() + Duration::seconds(3));
  // The t=1 event ran, the t=9 event did not, and now() sits at the
  // deadline rather than at the last event fired.
  EXPECT_EQ(fired_at, 1.0);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::seconds(3));
}

TEST(Simulation, RunUntilPastDeadlineIsNoOp) {
  Simulation sim;
  int ran = 0;
  sim.after(Duration::seconds(2), [&] { ++ran; });
  sim.run_until(TimePoint::epoch() + Duration::seconds(5));
  EXPECT_EQ(ran, 1);
  // A deadline behind now() must neither rewind time nor fire anything.
  sim.after(Duration::seconds(4), [&] { ++ran; });
  sim.run_until(TimePoint::epoch() + Duration::seconds(3));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::seconds(5));
}

TEST(Simulation, DispatchCountsAreObservable) {
  obs::Telemetry telemetry;
  obs::ScopedTelemetry scope(telemetry);
  Simulation sim;
  for (int i = 0; i < 5; ++i) {
    sim.after(Duration::seconds(i), [] {});
  }
  sim.run();
  const obs::Counter* dispatched =
      telemetry.metrics().counter("sim.events_dispatched");
  EXPECT_EQ(dispatched->value(), 5u);
}

TEST(Simulation, PastSchedulingClampsToNow) {
  Simulation sim;
  sim.after(Duration::seconds(5), [&] {
    // Schedule "in the past" from inside an event.
    sim.at(TimePoint::epoch() + Duration::seconds(1), [&] {
      EXPECT_EQ(sim.now().to_seconds(), 5.0);
    });
  });
  sim.run();
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulation, NegativeDelayClamps) {
  Simulation sim;
  bool ran = false;
  sim.after(Duration::seconds(-3), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), TimePoint::epoch());
}

TEST(PeriodicProcess, FiresAtInterval) {
  Simulation sim;
  std::vector<double> fired;
  PeriodicProcess p(sim, Duration::seconds(2),
                    [&] { fired.push_back(sim.now().to_seconds()); });
  p.start();  // first fire immediately (t=0)
  sim.run_until(TimePoint::epoch() + Duration::seconds(7));
  EXPECT_EQ(fired, (std::vector<double>{0.0, 2.0, 4.0, 6.0}));
}

TEST(PeriodicProcess, InitialDelay) {
  Simulation sim;
  std::vector<double> fired;
  PeriodicProcess p(sim, Duration::seconds(5),
                    [&] { fired.push_back(sim.now().to_seconds()); });
  p.start(Duration::seconds(1));
  sim.run_until(TimePoint::epoch() + Duration::seconds(12));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 6.0, 11.0}));
}

TEST(PeriodicProcess, StopHalts) {
  Simulation sim;
  int count = 0;
  PeriodicProcess p(sim, Duration::seconds(1), [&] { ++count; });
  p.start();
  sim.run_until(TimePoint::epoch() + Duration::milliseconds(2500));
  EXPECT_TRUE(p.running());
  p.stop();
  EXPECT_FALSE(p.running());
  sim.run_until(TimePoint::epoch() + Duration::seconds(10));
  EXPECT_EQ(count, 3);  // t=0,1,2
}

TEST(PeriodicProcess, ActionMayStopItself) {
  Simulation sim;
  int count = 0;
  PeriodicProcess p(sim, Duration::seconds(1), [&] {
    if (++count == 2) p.stop();
  });
  p.start();
  sim.run_until(TimePoint::epoch() + Duration::seconds(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicProcess, SetIntervalTakesEffect) {
  Simulation sim;
  std::vector<double> fired;
  PeriodicProcess p(sim, Duration::seconds(1),
                    [&] { fired.push_back(sim.now().to_seconds()); });
  p.start();
  sim.run_until(TimePoint::epoch() + Duration::milliseconds(1500));
  p.set_interval(Duration::seconds(3));
  sim.run_until(TimePoint::epoch() + Duration::seconds(9));
  // t=0,1 at 1s cadence; the pending event at t=2 fires, then 3s cadence.
  EXPECT_EQ(fired, (std::vector<double>{0.0, 1.0, 2.0, 5.0, 8.0}));
}

TEST(PeriodicProcess, DestructorCancels) {
  Simulation sim;
  int count = 0;
  {
    PeriodicProcess p(sim, Duration::seconds(1), [&] { ++count; });
    p.start();
    sim.run_until(TimePoint::epoch() + Duration::milliseconds(500));
  }
  sim.run_until(TimePoint::epoch() + Duration::seconds(5));
  EXPECT_EQ(count, 1);  // only the t=0 firing
}

}  // namespace
}  // namespace mntp::sim
