// Trace round-trip and tuner (logger/emulator/searcher) tests.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/rng.h"
#include "mntp/trace.h"
#include "mntp/tuner.h"
#include "ntp/testbed.h"
#include "obs/telemetry.h"
#include "obs/trace_event.h"

namespace mntp::protocol {
namespace {

using core::Duration;
using core::TimePoint;

Trace make_trace(std::size_t n, double interval_s = 5.0) {
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.t_s = static_cast<double>(i) * interval_s;
    r.rssi_dbm = -60.0;
    r.noise_dbm = -92.0;
    r.offsets_s = {0.001, 0.002, 0.0005};
    t.records.push_back(std::move(r));
  }
  return t;
}

TEST(Trace, CsvRoundTrip) {
  const Trace t = make_trace(5);
  const std::string csv = t.to_csv();
  const auto parsed = Trace::from_csv(csv);
  ASSERT_TRUE(parsed.ok());
  const Trace& u = parsed.value();
  ASSERT_EQ(u.size(), 5u);
  EXPECT_DOUBLE_EQ(u.records[3].t_s, 15.0);
  EXPECT_DOUBLE_EQ(u.records[3].rssi_dbm, -60.0);
  ASSERT_EQ(u.records[3].offsets_s.size(), 3u);
  EXPECT_NEAR(u.records[3].offsets_s[1], 0.002, 1e-9);
}

TEST(Trace, RaggedOffsetsSupported) {
  Trace t;
  t.records.push_back({.t_s = 0.0, .rssi_dbm = -60, .noise_dbm = -90,
                       .offsets_s = {}});
  t.records.push_back({.t_s = 5.0, .rssi_dbm = -61, .noise_dbm = -91,
                       .offsets_s = {0.1}});
  const auto parsed = Trace::from_csv(t.to_csv());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().records[0].offsets_s.empty());
  EXPECT_EQ(parsed.value().records[1].offsets_s.size(), 1u);
}

TEST(Trace, RejectsMalformedRows) {
  EXPECT_FALSE(Trace::from_csv("header\n1.0,abc,-90\n").ok());
  EXPECT_FALSE(Trace::from_csv("header\n1.0,-60\n").ok());  // too few fields
}

TEST(Trace, RejectsNonMonotonicTimestamps) {
  const std::string csv = "h\n1.0,-60,-90\n0.5,-60,-90\n";
  const auto parsed = Trace::from_csv(csv);
  ASSERT_FALSE(parsed.ok());
}

TEST(Trace, SpanAndEmpty) {
  EXPECT_TRUE(Trace{}.empty());
  EXPECT_DOUBLE_EQ(Trace{}.span_s(), 0.0);
  EXPECT_DOUBLE_EQ(make_trace(10).span_s(), 45.0);
}

TEST(Emulator, EmptyTraceEmptyResult) {
  const auto r = tuner::emulate(Trace{}, MntpParams{});
  EXPECT_EQ(r.requests, 0u);
  EXPECT_TRUE(r.reported_offsets_ms.empty());
}

TEST(Emulator, PacingControlsRequestCount) {
  const Trace t = make_trace(200);  // 1000 s at 5 s cadence
  MntpParams fast = head_to_head_params();  // acts every 5 s
  MntpParams slow = head_to_head_params();
  slow.regular_wait_time = Duration::seconds(60);
  slow.warmup_wait_time = Duration::seconds(60);
  const auto rf = tuner::emulate(t, fast);
  const auto rs = tuner::emulate(t, slow);
  EXPECT_GT(rf.requests, rs.requests * 5);
}

TEST(Emulator, UnfavorableHintsDeferEverything) {
  Trace t = make_trace(50);
  for (auto& r : t.records) {
    r.rssi_dbm = -85.0;  // below threshold
  }
  const auto r = tuner::emulate(t, head_to_head_params());
  EXPECT_EQ(r.requests, 0u);
  EXPECT_GT(r.deferrals, 40u);
}

TEST(Emulator, Deterministic) {
  const Trace t = make_trace(100);
  const auto a = tuner::emulate(t, MntpParams{});
  const auto b = tuner::emulate(t, MntpParams{});
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.reported_offsets_ms, b.reported_offsets_ms);
  EXPECT_DOUBLE_EQ(a.rmse_ms, b.rmse_ms);
}

TEST(Emulator, RmseReflectsOffsets) {
  Trace t = make_trace(100);
  for (auto& r : t.records) r.offsets_s = {0.010};  // constant 10 ms
  const auto res = tuner::emulate(t, head_to_head_params());
  ASSERT_FALSE(res.reported_offsets_ms.empty());
  EXPECT_NEAR(res.rmse_ms, 10.0, 0.5);
}

TEST(Emulator, WarmupConsumesThreeOffsetsRegularOne) {
  const Trace t = make_trace(200);
  MntpParams p;
  p.warmup_period = Duration::minutes(2);
  p.warmup_wait_time = Duration::seconds(5);
  p.regular_wait_time = Duration::seconds(5);
  p.min_warmup_samples = 5;
  p.reset_period = Duration::hours(2);
  const auto r = tuner::emulate(t, p);
  // Warm-up rounds bill 3 requests each; regular rounds 1. Total must
  // exceed the pure-regular count for the same opportunities.
  const auto pure_regular = tuner::emulate(t, head_to_head_params());
  EXPECT_GT(r.requests, pure_regular.requests);
}

// A "recorded" trace with realistic variation: hints wander (so some
// configs gate differently) and offsets are noisy, all deterministic.
Trace make_noisy_trace(std::size_t n) {
  Trace t;
  core::Rng rng(77);
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.t_s = static_cast<double>(i) * 5.0;
    r.rssi_dbm = rng.uniform(-85.0, -55.0);
    r.noise_dbm = rng.uniform(-95.0, -70.0);
    const std::size_t k = rng.index(4);  // 0..3 offsets; 0 = failed round
    for (std::size_t j = 0; j < k; ++j) {
      r.offsets_s.push_back(rng.normal(0.0, 0.01));
    }
    t.records.push_back(std::move(r));
  }
  return t;
}

tuner::SearchSpace golden_space() {
  tuner::SearchSpace space;
  space.warmup_periods = {Duration::minutes(30), Duration::minutes(60),
                          Duration::minutes(120)};
  space.warmup_wait_times = {Duration::seconds(15), Duration::seconds(60)};
  space.regular_wait_times = {Duration::minutes(5), Duration::minutes(15),
                              Duration::minutes(30)};
  space.reset_periods = {Duration::hours(4)};
  return space;
}

TEST(Searcher, ParallelOutputBitIdenticalToSerial) {
  const Trace t = make_noisy_trace(2880);  // 4 h at 5 s
  const auto space = golden_space();
  const auto serial = tuner::search(t, space, {.threads = 1});
  for (const std::size_t threads : {2u, 4u, 7u}) {
    const auto parallel = tuner::search(t, space, {.threads = threads});
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bit-identical: same enumeration order, same doubles, not "close".
      EXPECT_EQ(serial[i].rmse_ms, parallel[i].rmse_ms)
          << "entry " << i << ", " << threads << " threads";
      EXPECT_EQ(serial[i].requests, parallel[i].requests)
          << "entry " << i << ", " << threads << " threads";
      EXPECT_EQ(serial[i].to_string(), parallel[i].to_string())
          << "entry " << i << ", " << threads << " threads";
    }
  }
}

TEST(Searcher, ParallelTunerEventStreamIdenticalToSerial) {
  // The searcher's own events ("tuner" category) are emitted after
  // scoring, in enumeration order, from the calling thread — so that
  // sub-stream is bit-identical for any thread count. (Engine-internal
  // events emitted while replays score on workers are mutex-serialized
  // but interleave in scheduler order; they carry no cross-config
  // information.)
  const Trace t = make_noisy_trace(720);
  const auto space = golden_space();

  auto capture = [&](std::size_t threads) {
    obs::Telemetry tel;
    obs::RingBufferSink ring(1 << 18);
    tel.add_sink(&ring);
    obs::ScopedTelemetry scope(tel);
    (void)tuner::search(t, space, {.threads = threads});
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < ring.events().size(); ++i) {
      if (ring.events()[i].category == "tuner") {
        lines.push_back(obs::to_jsonl_line(ring.events()[i]));
      }
    }
    EXPECT_EQ(ring.evicted(), 0u);
    return lines;
  };

  const auto serial = capture(1);
  const auto parallel = capture(4);
  EXPECT_EQ(serial.size(), 18u);
  EXPECT_EQ(serial, parallel);
}

TEST(Searcher, CountsEveryConfigOnceUnderParallelScoring) {
  const Trace t = make_noisy_trace(360);
  obs::Telemetry tel;
  obs::ScopedTelemetry scope(tel);
  (void)tuner::search(t, golden_space(), {.threads = 4});
  EXPECT_EQ(tel.metrics().counter("tuner.configs_scored")->value(), 18u);
}

TEST(Emulator, FailedRoundBillsRequestsButReportsNoOffset) {
  // Decision pinned here: all-queries-failed records STAY in the trace
  // (hints drive gating/deferral) and replay as a round that costs
  // requests but lands no sample — matching what the live client
  // experiences when its queries time out.
  Trace t;
  for (std::size_t i = 0; i < 3; ++i) {
    TraceRecord r;
    r.t_s = static_cast<double>(i) * 5.0;
    r.rssi_dbm = -60.0;  // gate open
    r.noise_dbm = -92.0;
    // middle record: every query failed
    if (i != 1) r.offsets_s = {0.001};
    t.records.push_back(std::move(r));
  }
  MntpParams p = head_to_head_params();
  const auto with_failed = tuner::emulate(t, p);

  Trace only_good = t;
  only_good.records.erase(only_good.records.begin() + 1);
  const auto without = tuner::emulate(only_good, p);

  // The failed round still billed its requests...
  EXPECT_GT(with_failed.requests, without.requests);
  // ...but contributed no reported offset.
  EXPECT_EQ(with_failed.reported_offsets_ms.size(),
            without.reported_offsets_ms.size());
}

TEST(Searcher, EnumeratesCartesianProduct) {
  const Trace t = make_trace(100);
  tuner::SearchSpace space;
  space.warmup_periods = {Duration::minutes(1), Duration::minutes(2)};
  space.warmup_wait_times = {Duration::seconds(5)};
  space.regular_wait_times = {Duration::seconds(15), Duration::seconds(30),
                              Duration::seconds(60)};
  space.reset_periods = {Duration::hours(4)};
  const auto entries = tuner::search(t, space);
  EXPECT_EQ(entries.size(), 6u);
  for (const auto& e : entries) {
    EXPECT_GE(e.rmse_ms, 0.0);
  }
  EXPECT_FALSE(entries[0].to_string().empty());
}

TEST(Logger, CapturesHintsAndOffsets) {
  ntp::TestbedConfig config;
  config.seed = 200;
  config.wireless = true;
  config.ntp_correction = false;
  ntp::Testbed bed(config);
  tuner::LoggerParams lp;
  tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                       lp, bed.fork_rng());
  bed.start();
  logger.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(10));
  logger.stop();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(11));

  const Trace& t = logger.trace();
  ASSERT_GT(t.size(), 100u);  // ~120 opportunities
  std::size_t with_offsets = 0;
  for (const auto& r : t.records) {
    EXPECT_GT(r.rssi_dbm, -120.0);
    EXPECT_LT(r.rssi_dbm, 0.0);
    EXPECT_LE(r.offsets_s.size(), lp.sources);
    if (!r.offsets_s.empty()) ++with_offsets;
  }
  EXPECT_GT(with_offsets, t.size() / 2);
}

TEST(Logger, DestroyWithQueriesInFlightIsSafe) {
  // Regression: completion callbacks used to capture `this` unguarded;
  // queries still in flight after destruction wrote into freed memory.
  ntp::TestbedConfig config;
  config.seed = 202;
  config.wireless = true;
  ntp::Testbed bed(config);
  bed.start();
  {
    tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(),
                         bed.channel(), {}, bed.fork_rng());
    logger.start();
    // Long enough for capture_once to fire and launch its queries, short
    // enough that no exchange has completed (RTTs are tens of ms).
    bed.sim().run_until(TimePoint::epoch() + Duration::milliseconds(1));
    EXPECT_TRUE(logger.started());
  }  // destroyed with ~3 SNTP exchanges outstanding
  // Drain: the orphaned completions fire and must be no-ops.
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(1));
}

TEST(Logger, StopDisarmsInFlightQueriesAndResetsStarted) {
  ntp::TestbedConfig config;
  config.seed = 203;
  config.wireless = true;
  ntp::Testbed bed(config);
  tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(),
                       bed.channel(), {}, bed.fork_rng());
  bed.start();
  EXPECT_FALSE(logger.started());
  logger.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::milliseconds(1));
  logger.stop();
  EXPECT_FALSE(logger.started());
  const std::size_t at_stop = logger.trace().size();
  // The round that was in flight at stop() completes but is dropped.
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(1));
  EXPECT_EQ(logger.trace().size(), at_stop);

  // A stopped logger restarts cleanly and captures again.
  logger.start();
  EXPECT_TRUE(logger.started());
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(3));
  logger.stop();
  EXPECT_GT(logger.trace().size(), at_stop);
}

TEST(Logger, SmallPoolDrawsDistinctServersWithoutSpin) {
  // sources > pool size used to make the rejection-sampling draw loop
  // degenerate; the partial Fisher–Yates draws min(sources, size)
  // distinct indices in exactly that many RNG draws.
  ntp::TestbedConfig config;
  config.seed = 204;
  config.wireless = true;
  config.ntp_correction = false;  // default peer set needs a larger pool
  config.pool.server_count = 2;   // smaller than the default sources = 3
  ntp::Testbed bed(config);
  tuner::LoggerParams lp;
  lp.sources = 3;
  tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(),
                       bed.channel(), lp, bed.fork_rng());
  bed.start();
  logger.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(5));
  logger.stop();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(6));
  ASSERT_GT(logger.trace().size(), 10u);
  for (const auto& r : logger.trace().records) {
    EXPECT_LE(r.offsets_s.size(), 2u);  // at most pool-size distinct sources
  }
}

TEST(LoggerEmulatorEndToEnd, CapturedTraceReplays) {
  ntp::TestbedConfig config;
  config.seed = 201;
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);
  tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                       {}, bed.fork_rng());
  bed.start();
  logger.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30));
  logger.stop();

  const auto result = tuner::emulate(logger.trace(), head_to_head_params());
  EXPECT_GT(result.requests, 0u);
  EXPECT_FALSE(result.reported_offsets_ms.empty());
  // The emulated MNTP on a corrected-clock trace stays within tens of ms.
  EXPECT_LT(result.rmse_ms, 50.0);
}

}  // namespace
}  // namespace mntp::protocol
