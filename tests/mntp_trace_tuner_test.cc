// Trace round-trip and tuner (logger/emulator/searcher) tests.
#include <gtest/gtest.h>

#include "mntp/trace.h"
#include "mntp/tuner.h"
#include "ntp/testbed.h"

namespace mntp::protocol {
namespace {

using core::Duration;
using core::TimePoint;

Trace make_trace(std::size_t n, double interval_s = 5.0) {
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.t_s = static_cast<double>(i) * interval_s;
    r.rssi_dbm = -60.0;
    r.noise_dbm = -92.0;
    r.offsets_s = {0.001, 0.002, 0.0005};
    t.records.push_back(std::move(r));
  }
  return t;
}

TEST(Trace, CsvRoundTrip) {
  const Trace t = make_trace(5);
  const std::string csv = t.to_csv();
  const auto parsed = Trace::from_csv(csv);
  ASSERT_TRUE(parsed.ok());
  const Trace& u = parsed.value();
  ASSERT_EQ(u.size(), 5u);
  EXPECT_DOUBLE_EQ(u.records[3].t_s, 15.0);
  EXPECT_DOUBLE_EQ(u.records[3].rssi_dbm, -60.0);
  ASSERT_EQ(u.records[3].offsets_s.size(), 3u);
  EXPECT_NEAR(u.records[3].offsets_s[1], 0.002, 1e-9);
}

TEST(Trace, RaggedOffsetsSupported) {
  Trace t;
  t.records.push_back({.t_s = 0.0, .rssi_dbm = -60, .noise_dbm = -90,
                       .offsets_s = {}});
  t.records.push_back({.t_s = 5.0, .rssi_dbm = -61, .noise_dbm = -91,
                       .offsets_s = {0.1}});
  const auto parsed = Trace::from_csv(t.to_csv());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().records[0].offsets_s.empty());
  EXPECT_EQ(parsed.value().records[1].offsets_s.size(), 1u);
}

TEST(Trace, RejectsMalformedRows) {
  EXPECT_FALSE(Trace::from_csv("header\n1.0,abc,-90\n").ok());
  EXPECT_FALSE(Trace::from_csv("header\n1.0,-60\n").ok());  // too few fields
}

TEST(Trace, RejectsNonMonotonicTimestamps) {
  const std::string csv = "h\n1.0,-60,-90\n0.5,-60,-90\n";
  const auto parsed = Trace::from_csv(csv);
  ASSERT_FALSE(parsed.ok());
}

TEST(Trace, SpanAndEmpty) {
  EXPECT_TRUE(Trace{}.empty());
  EXPECT_DOUBLE_EQ(Trace{}.span_s(), 0.0);
  EXPECT_DOUBLE_EQ(make_trace(10).span_s(), 45.0);
}

TEST(Emulator, EmptyTraceEmptyResult) {
  const auto r = tuner::emulate(Trace{}, MntpParams{});
  EXPECT_EQ(r.requests, 0u);
  EXPECT_TRUE(r.reported_offsets_ms.empty());
}

TEST(Emulator, PacingControlsRequestCount) {
  const Trace t = make_trace(200);  // 1000 s at 5 s cadence
  MntpParams fast = head_to_head_params();  // acts every 5 s
  MntpParams slow = head_to_head_params();
  slow.regular_wait_time = Duration::seconds(60);
  slow.warmup_wait_time = Duration::seconds(60);
  const auto rf = tuner::emulate(t, fast);
  const auto rs = tuner::emulate(t, slow);
  EXPECT_GT(rf.requests, rs.requests * 5);
}

TEST(Emulator, UnfavorableHintsDeferEverything) {
  Trace t = make_trace(50);
  for (auto& r : t.records) {
    r.rssi_dbm = -85.0;  // below threshold
  }
  const auto r = tuner::emulate(t, head_to_head_params());
  EXPECT_EQ(r.requests, 0u);
  EXPECT_GT(r.deferrals, 40u);
}

TEST(Emulator, Deterministic) {
  const Trace t = make_trace(100);
  const auto a = tuner::emulate(t, MntpParams{});
  const auto b = tuner::emulate(t, MntpParams{});
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.reported_offsets_ms, b.reported_offsets_ms);
  EXPECT_DOUBLE_EQ(a.rmse_ms, b.rmse_ms);
}

TEST(Emulator, RmseReflectsOffsets) {
  Trace t = make_trace(100);
  for (auto& r : t.records) r.offsets_s = {0.010};  // constant 10 ms
  const auto res = tuner::emulate(t, head_to_head_params());
  ASSERT_FALSE(res.reported_offsets_ms.empty());
  EXPECT_NEAR(res.rmse_ms, 10.0, 0.5);
}

TEST(Emulator, WarmupConsumesThreeOffsetsRegularOne) {
  const Trace t = make_trace(200);
  MntpParams p;
  p.warmup_period = Duration::minutes(2);
  p.warmup_wait_time = Duration::seconds(5);
  p.regular_wait_time = Duration::seconds(5);
  p.min_warmup_samples = 5;
  p.reset_period = Duration::hours(2);
  const auto r = tuner::emulate(t, p);
  // Warm-up rounds bill 3 requests each; regular rounds 1. Total must
  // exceed the pure-regular count for the same opportunities.
  const auto pure_regular = tuner::emulate(t, head_to_head_params());
  EXPECT_GT(r.requests, pure_regular.requests);
}

TEST(Searcher, EnumeratesCartesianProduct) {
  const Trace t = make_trace(100);
  tuner::SearchSpace space;
  space.warmup_periods = {Duration::minutes(1), Duration::minutes(2)};
  space.warmup_wait_times = {Duration::seconds(5)};
  space.regular_wait_times = {Duration::seconds(15), Duration::seconds(30),
                              Duration::seconds(60)};
  space.reset_periods = {Duration::hours(4)};
  const auto entries = tuner::search(t, space);
  EXPECT_EQ(entries.size(), 6u);
  for (const auto& e : entries) {
    EXPECT_GE(e.rmse_ms, 0.0);
  }
  EXPECT_FALSE(entries[0].to_string().empty());
}

TEST(Logger, CapturesHintsAndOffsets) {
  ntp::TestbedConfig config;
  config.seed = 200;
  config.wireless = true;
  config.ntp_correction = false;
  ntp::Testbed bed(config);
  tuner::LoggerParams lp;
  tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                       lp, bed.fork_rng());
  bed.start();
  logger.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(10));
  logger.stop();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(11));

  const Trace& t = logger.trace();
  ASSERT_GT(t.size(), 100u);  // ~120 opportunities
  std::size_t with_offsets = 0;
  for (const auto& r : t.records) {
    EXPECT_GT(r.rssi_dbm, -120.0);
    EXPECT_LT(r.rssi_dbm, 0.0);
    EXPECT_LE(r.offsets_s.size(), lp.sources);
    if (!r.offsets_s.empty()) ++with_offsets;
  }
  EXPECT_GT(with_offsets, t.size() / 2);
}

TEST(LoggerEmulatorEndToEnd, CapturedTraceReplays) {
  ntp::TestbedConfig config;
  config.seed = 201;
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);
  tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                       {}, bed.fork_rng());
  bed.start();
  logger.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(30));
  logger.stop();

  const auto result = tuner::emulate(logger.trace(), head_to_head_params());
  EXPECT_GT(result.requests, 0u);
  EXPECT_FALSE(result.reported_offsets_ms.empty());
  // The emulated MNTP on a corrected-clock trace stays within tens of ms.
  EXPECT_LT(result.rmse_ms, 50.0);
}

}  // namespace
}  // namespace mntp::protocol
