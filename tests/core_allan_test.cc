#include "core/allan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"
#include "sim/clock_model.h"

namespace mntp::core {
namespace {

TEST(Allan, DegenerateInputsReturnZero) {
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_EQ(allan_deviation_at(tiny, 1.0, 1), 0.0);
  EXPECT_EQ(allan_deviation_at({}, 1.0, 1), 0.0);
  const std::vector<double> some{1, 2, 3, 4, 5};
  EXPECT_EQ(allan_deviation_at(some, 0.0, 1), 0.0);  // bad tau0
  EXPECT_EQ(allan_deviation_at(some, 1.0, 0), 0.0);  // bad m
}

TEST(Allan, LinearPhaseHasZeroDeviation) {
  // A constant frequency offset (linear phase ramp) is invisible to ADEV:
  // the second difference annihilates it.
  std::vector<double> phase;
  for (int i = 0; i < 1000; ++i) phase.push_back(1e-6 * i);  // 1 ppm ramp
  for (std::size_t m : {1u, 4u, 16u}) {
    EXPECT_NEAR(allan_deviation_at(phase, 1.0, m), 0.0, 1e-15);
  }
}

TEST(Allan, WhitePhaseNoiseKnownValueAndSlope) {
  // White PM of variance sigma^2: ADEV(tau0, m=1) = sqrt(3) * sigma / tau
  // and the sigma-tau slope is -1.
  Rng rng(1);
  const double sigma = 1e-6;
  std::vector<double> phase;
  for (int i = 0; i < 200000; ++i) phase.push_back(rng.normal(0.0, sigma));
  const double adev1 = allan_deviation_at(phase, 1.0, 1);
  EXPECT_NEAR(adev1, std::sqrt(3.0) * sigma, 0.05 * adev1);
  const auto curve = allan_deviation(phase, 1.0);
  EXPECT_NEAR(sigma_tau_slope(curve), -1.0, 0.1);
}

TEST(Allan, WhiteFrequencyNoiseSlope) {
  // White FM (random-walk phase): slope -1/2.
  Rng rng(2);
  std::vector<double> phase;
  double x = 0.0;
  for (int i = 0; i < 200000; ++i) {
    x += rng.normal(0.0, 1e-8);
    phase.push_back(x);
  }
  const auto curve = allan_deviation(phase, 1.0);
  EXPECT_NEAR(sigma_tau_slope(curve), -0.5, 0.12);
}

TEST(Allan, RandomWalkFrequencySlope) {
  // RW FM (random-walk frequency, doubly integrated): slope +1/2.
  Rng rng(3);
  std::vector<double> phase;
  double freq = 0.0, x = 0.0;
  for (int i = 0; i < 100000; ++i) {
    freq += rng.normal(0.0, 1e-10);
    x += freq;
    phase.push_back(x);
  }
  const auto curve = allan_deviation(phase, 1.0);
  EXPECT_NEAR(sigma_tau_slope(curve), 0.5, 0.25);
}

TEST(Allan, CurveUsesOctaveSpacedTaus) {
  std::vector<double> phase(1000, 0.0);
  const auto curve = allan_deviation(phase, 2.0);
  ASSERT_GE(curve.size(), 8u);
  EXPECT_DOUBLE_EQ(curve[0].first, 2.0);
  EXPECT_DOUBLE_EQ(curve[1].first, 4.0);
  EXPECT_DOUBLE_EQ(curve[2].first, 8.0);
}

TEST(Allan, OscillatorModelShowsWanderAtLongTau) {
  // The library's oscillator: read noise (white PM) dominates short tau,
  // the random-walk wander (RW FM) takes over at long tau — so the
  // sigma-tau curve turns from falling to rising.
  sim::OscillatorParams p;
  p.constant_skew_ppm = -5.5;       // invisible to ADEV
  p.wander_ppm_per_sqrt_s = 0.05;
  p.read_noise_s = 20e-6;
  sim::OscillatorModel osc(p, Rng(4));
  std::vector<double> phase;
  for (int i = 0; i < 20000; ++i) {
    phase.push_back(osc.read_offset(
        core::TimePoint::epoch() + core::Duration::seconds(i)));
  }
  const auto curve = allan_deviation(phase, 1.0);
  ASSERT_GE(curve.size(), 10u);
  // Falling at the start (white PM)...
  EXPECT_LT(curve[2].second, curve[0].second);
  // ...and turning back up past the noise floor by the tail (wander):
  // the sigma-tau curve has the classic bathtub shape.
  double floor = curve[0].second;
  for (const auto& [tau, adev] : curve) floor = std::min(floor, adev);
  EXPECT_GT(curve.back().second, 1.5 * floor);
  EXPECT_LT(floor, curve[0].second / 3.0);
}

}  // namespace
}  // namespace mntp::core
