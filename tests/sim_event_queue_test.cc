#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/rng.h"

namespace mntp::sim {
namespace {

using core::Duration;
using core::TimePoint;

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::epoch() + Duration::milliseconds(ms);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at_ms(30), [&] { order.push_back(3); });
  q.schedule(at_ms(10), [&] { order.push_back(1); });
  q.schedule(at_ms(20), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at_ms(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(at_ms(7), [] {});
  EXPECT_EQ(q.run_next(), at_ms(7));
}

TEST(EventQueue, NextTimeOnEmptyIsMax) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), TimePoint::max());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunNextOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.run_next(), std::logic_error);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(at_ms(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterRunIsNoop) {
  EventQueue q;
  EventHandle h = q.schedule(at_ms(1), [] {});
  q.run_next();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelledMiddleEventSkipped) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at_ms(1), [&] { order.push_back(1); });
  EventHandle h = q.schedule(at_ms(2), [&] { order.push_back(2); });
  q.schedule(at_ms(3), [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, EventMaySchedule) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at_ms(1), [&] {
    order.push_back(1);
    q.schedule(at_ms(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  bool ran = false;
  q.schedule(at_ms(1), [&] { ran = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(ran);
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

// Pins the size() contract: an upper bound that counts cancelled entries
// until lazy purging reaches them — and purging happens on ANY
// head-inspecting accessor (empty(), next_time(), run_next()), not only
// when the entry would have fired.
TEST(EventQueue, SizeAcrossCancelPeekRunSequences) {
  EventQueue q;
  EventHandle a = q.schedule(at_ms(1), [] {});
  EventHandle b = q.schedule(at_ms(2), [] {});
  q.schedule(at_ms(3), [] {});
  EXPECT_EQ(q.size(), 3u);

  // Cancelling a buried entry does NOT change size() by itself.
  b.cancel();
  EXPECT_EQ(q.size(), 3u);

  // Cancelling the head entry still doesn't change size() — no peek yet.
  a.cancel();
  EXPECT_EQ(q.size(), 3u);

  // A const peek purges cancelled entries at the head: a drops here.
  EXPECT_EQ(q.next_time(), at_ms(3));  // b is gone too: it surfaced next
  EXPECT_EQ(q.size(), 1u);

  // run_next() consumes the one live event.
  q.run_next();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeUpperBoundNeverUndercounts) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(q.schedule(at_ms(i + 1), [] {}));
  }
  // Cancel every other event; size() stays an upper bound on the 5 live.
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  EXPECT_GE(q.size(), 5u);
  EXPECT_EQ(q.size(), 10u);  // nothing purged yet

  std::size_t ran = 0;
  while (!q.empty()) {  // empty() purges any cancelled head first
    EXPECT_GE(q.size(), 5u - ran);
    q.run_next();
    ++ran;
  }
  EXPECT_EQ(ran, 5u);
  EXPECT_EQ(q.size(), 0u);
}

// Slot recycling safety: a handle from a previous tenancy of a slab
// slot must never cancel (or report pending for) the slot's new tenant.
TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  EventQueue q;
  bool first = false;
  bool second = false;
  EventHandle old = q.schedule(at_ms(1), [&] { first = true; });
  old.cancel();  // frees the slot; generation bumps
  // The freed slot is recycled for the next schedule.
  EventHandle fresh = q.schedule(at_ms(2), [&] { second = true; });
  EXPECT_FALSE(old.pending());
  old.cancel();  // stale generation: must be a no-op on the new tenant
  EXPECT_TRUE(fresh.pending());
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(EventQueue, StaleHandleAfterRunCannotTouchRecycledSlot) {
  EventQueue q;
  int fired = 0;
  EventHandle old = q.schedule(at_ms(1), [&] { ++fired; });
  q.run_next();  // slot released on fire
  EventHandle fresh = q.schedule(at_ms(2), [&] { ++fired; });
  EXPECT_FALSE(old.pending());
  old.cancel();
  EXPECT_TRUE(fresh.pending());
  q.run_next();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, HandlesStayDistinctAcrossManyRecycles) {
  // Drive one slot through many schedule/cancel generations; every
  // retired handle must stay inert while the live one works.
  EventQueue q;
  std::vector<EventHandle> retired;
  for (int i = 0; i < 100; ++i) {
    EventHandle h = q.schedule(at_ms(1), [] {});
    for (EventHandle& stale : retired) {
      EXPECT_FALSE(stale.pending());
      stale.cancel();  // all no-ops
    }
    EXPECT_TRUE(h.pending());
    h.cancel();
    retired.push_back(h);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ActionMayRescheduleIntoItsOwnSlot) {
  // The firing event's slot is released before its action runs, so a
  // self-rescheduling chain may legally land in the very same slot.
  EventQueue q;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) q.schedule(at_ms(fired + 1), [&] { tick(); });
  };
  q.schedule(at_ms(1), [&] { tick(); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 5);
}

// Golden event-order regression: a randomized schedule/cancel workload
// checked against a reference model (stable sort by (time, seq) with
// cancelled entries removed). Pins the FIFO-tie contract and that the
// 4-ary heap + tombstone purge + compaction never reorder live events.
TEST(EventQueue, GoldenOrderMatchesReferenceModel) {
  EventQueue q;
  core::Rng rng(20260806);

  struct Expected {
    std::int64_t when_ms;
    std::size_t seq;  // schedule order = FIFO rank within a tie
    std::size_t id;
  };
  std::vector<Expected> expected;
  std::vector<EventHandle> handles;
  std::vector<std::size_t> fired;

  for (std::size_t i = 0; i < 2'000; ++i) {
    const auto when_ms = static_cast<std::int64_t>(rng.uniform(1.0, 64.0));
    handles.push_back(
        q.schedule(at_ms(when_ms), [&fired, i] { fired.push_back(i); }));
    expected.push_back({when_ms, i, i});
  }
  // Cancel a pseudo-random third, including long cancelled runs that
  // force tombstone purge (and, at this volume, compaction) to engage.
  std::vector<bool> cancelled(handles.size(), false);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (static_cast<int>(rng.uniform(0.0, 3.0)) == 0 ||
        (i >= 500 && i < 700)) {
      handles[i].cancel();
      cancelled[i] = true;
    }
  }

  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) {
                     return a.when_ms != b.when_ms ? a.when_ms < b.when_ms
                                                   : a.seq < b.seq;
                   });
  std::vector<std::size_t> golden;
  for (const Expected& e : expected) {
    if (!cancelled[e.id]) golden.push_back(e.id);
  }

  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, golden);
}

}  // namespace
}  // namespace mntp::sim
