#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "core/json.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "mntp/engine.h"
#include "mntp/params.h"
#include "obs/metric_names.h"
#include "obs/telemetry.h"

namespace mntp::obs {
namespace {

/// Telemetry context with its profiler on, installed for the scope.
struct ProfiledScope {
  Telemetry telemetry;
  ScopedTelemetry scope{telemetry};
  ProfiledScope() { telemetry.profiler().set_enabled(true); }
};

TEST(Profiler, DisabledRecordsNothing) {
  Telemetry telemetry;  // profiler off by default
  ScopedTelemetry scope(telemetry);
  {
    ProfileScope span("test.disabled");
  }
  EXPECT_TRUE(telemetry.profiler().records().empty());
  EXPECT_EQ(telemetry.profiler().total_spans(), 0u);
}

TEST(Profiler, RecordsCompletedSpans) {
  ProfiledScope p;
  {
    ProfileScope span("test.outer");
  }
  {
    ProfileScope span("test.outer");
  }
  const auto records = p.telemetry.profiler().records();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    EXPECT_STREQ(r.name, "test.outer");
    EXPECT_EQ(r.depth, 0u);
    EXPECT_GE(r.dur_ns, 0);
    EXPECT_EQ(r.self_ns, r.dur_ns);  // no children
    EXPECT_FALSE(r.has_sim);
    EXPECT_GT(r.tid, 0u);
  }
}

TEST(Profiler, SimTimestampCarried) {
  ProfiledScope p;
  {
    ProfileScope span("test.sim", core::TimePoint::from_ns(1'234'567));
  }
  const auto records = p.telemetry.profiler().records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].has_sim);
  EXPECT_EQ(records[0].sim_t_ns, 1'234'567);
}

TEST(Profiler, NestingComputesDepthAndSelfTime) {
  ProfiledScope p;
  {
    ProfileScope outer("test.outer");
    {
      ProfileScope inner_a("test.inner");
    }
    {
      ProfileScope inner_b("test.inner");
    }
  }
  const auto records = p.telemetry.profiler().records();
  ASSERT_EQ(records.size(), 3u);  // completion order: inner, inner, outer
  const auto& inner_a = records[0];
  const auto& inner_b = records[1];
  const auto& outer = records[2];
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner_a.depth, 1u);
  EXPECT_EQ(inner_b.depth, 1u);
  // Self time is exactly total minus the children's recorded durations.
  EXPECT_EQ(outer.self_ns, outer.dur_ns - inner_a.dur_ns - inner_b.dur_ns);
  EXPECT_GE(outer.dur_ns, inner_a.dur_ns + inner_b.dur_ns);
}

TEST(Profiler, SpanCrossingScopedTelemetryRecordsWhereItOpened) {
  Telemetry outer_telemetry;
  outer_telemetry.profiler().set_enabled(true);
  Telemetry inner_telemetry;
  inner_telemetry.profiler().set_enabled(true);
  {
    ScopedTelemetry outer_scope(outer_telemetry);
    ProfileScope outer_span("test.crossing.outer");
    {
      // The context switches mid-span: the outer span must still record
      // into outer_telemetry (pinned at open), the inner into
      // inner_telemetry, and self-time accounting must bridge the two.
      ScopedTelemetry inner_scope(inner_telemetry);
      ProfileScope inner_span("test.crossing.inner");
    }
  }
  const auto outer_records = outer_telemetry.profiler().records();
  const auto inner_records = inner_telemetry.profiler().records();
  ASSERT_EQ(outer_records.size(), 1u);
  ASSERT_EQ(inner_records.size(), 1u);
  EXPECT_STREQ(outer_records[0].name, "test.crossing.outer");
  EXPECT_STREQ(inner_records[0].name, "test.crossing.inner");
  EXPECT_EQ(inner_records[0].depth, 1u);
  EXPECT_EQ(outer_records[0].self_ns,
            outer_records[0].dur_ns - inner_records[0].dur_ns);
}

TEST(Profiler, AggregatesAcrossThreadPoolWorkers) {
  ProfiledScope p;
  constexpr std::size_t kTasks = 64;
  {
    core::ThreadPool pool(4);
    pool.parallel_for(0, kTasks, [](std::size_t) {
      ProfileScope span("test.worker");
      ProfileScope nested("test.worker.nested");
    });
  }
  const auto stats = p.telemetry.profiler().stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "test.worker");
  EXPECT_EQ(stats[0].count, kTasks);
  EXPECT_EQ(stats[1].name, "test.worker.nested");
  EXPECT_EQ(stats[1].count, kTasks);
  // Every span got a valid per-thread id and consistent nesting depth,
  // regardless of which worker ran it.
  for (const auto& r : p.telemetry.profiler().records()) {
    EXPECT_GT(r.tid, 0u);
    EXPECT_EQ(r.depth, r.name == std::string("test.worker") ? 0u : 1u);
  }
}

TEST(Profiler, StatsAggregateMatchesRecords) {
  ProfiledScope p;
  for (int i = 0; i < 10; ++i) {
    ProfileScope span("test.agg");
  }
  const auto records = p.telemetry.profiler().records();
  const auto stats = p.telemetry.profiler().stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 10u);
  std::int64_t total = 0, min = records[0].dur_ns, max = records[0].dur_ns;
  for (const auto& r : records) {
    total += r.dur_ns;
    min = std::min(min, r.dur_ns);
    max = std::max(max, r.dur_ns);
  }
  EXPECT_EQ(stats[0].total_ns, total);
  EXPECT_EQ(stats[0].min_ns, min);
  EXPECT_EQ(stats[0].max_ns, max);
  EXPECT_LE(stats[0].min_ns, stats[0].max_ns);
}

TEST(Profiler, RecordCapCountsDroppedButKeepsAggregates) {
  Profiler profiler(Profiler::Options{.max_records = 4});
  for (int i = 0; i < 10; ++i) {
    profiler.record(Profiler::SpanRecord{
        .name = "test.cap", .tid = 1, .dur_ns = 100, .self_ns = 100});
  }
  EXPECT_EQ(profiler.records().size(), 4u);
  EXPECT_EQ(profiler.dropped(), 6u);
  EXPECT_EQ(profiler.total_spans(), 10u);
  const auto stats = profiler.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 10u);  // aggregates see every span
}

TEST(Profiler, ExportToMetricsPublishesGauges) {
  ProfiledScope p;
  {
    ProfileScope span("test.export");
  }
  p.telemetry.profiler().export_to_metrics(p.telemetry.metrics());
  const Labels labels{{"span", "test.export"}};
  Gauge* count = p.telemetry.metrics().gauge("profile.span.count", labels);
  EXPECT_EQ(count->value(), 1.0);
  Gauge* total =
      p.telemetry.metrics().gauge("profile.span.total_wall_us", labels);
  EXPECT_GE(total->value(), 0.0);
}

TEST(Profiler, ChromeTraceIsValidJsonWithExpectedShape) {
  ProfiledScope p;
  {
    ProfileScope outer("test.trace.outer",
                       core::TimePoint::from_ns(5'000'000'000));
    ProfileScope inner("test.trace.inner");
  }
  std::ostringstream out;
  write_chrome_trace(out, p.telemetry.profiler(), "unit_test");
  const auto doc = core::Json::parse(out.str());
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const core::Json& root = doc.value();
  EXPECT_EQ(root["otherData"]["run"].as_string(), "unit_test");
  const auto& events = root["traceEvents"].as_array();
  ASSERT_EQ(events.size(), 3u);  // process_name metadata + 2 spans
  EXPECT_EQ(events[0]["ph"].as_string(), "M");
  EXPECT_EQ(events[0]["args"]["name"].as_string(), "unit_test");
  bool saw_outer = false;
  for (const core::Json& e : events) {
    if (e["ph"].as_string() != "X") continue;
    EXPECT_EQ(e["cat"].as_string(), "span");
    EXPECT_GE(e["dur"].as_double(), 0.0);
    EXPECT_LE(e["args"]["self_us"].as_double(), e["dur"].as_double() + 1e-3);
    if (e["name"].as_string() == "test.trace.outer") {
      saw_outer = true;
      EXPECT_EQ(e["args"]["sim_t_ns"].as_int(), 5'000'000'000);
      EXPECT_EQ(e["args"]["depth"].as_int(), 0);
    }
  }
  EXPECT_TRUE(saw_outer);
}

TEST(Profiler, ClearResetsEverythingButEnabled) {
  ProfiledScope p;
  {
    ProfileScope span("test.clear");
  }
  p.telemetry.profiler().clear();
  EXPECT_TRUE(p.telemetry.profiler().records().empty());
  EXPECT_TRUE(p.telemetry.profiler().stats().empty());
  EXPECT_EQ(p.telemetry.profiler().total_spans(), 0u);
  EXPECT_TRUE(p.telemetry.profiler().enabled());
}

// The acceptance bar for the whole profiler: enabling it must not
// change any simulated result. Run identical engine workloads with the
// profiler off and on; every reported offset must be bit-identical.
TEST(Profiler, EnablingDoesNotChangeSimulatedResults) {
  const auto run = [](bool profile) {
    Telemetry telemetry;
    telemetry.profiler().set_enabled(profile);
    ScopedTelemetry scope(telemetry);
    protocol::MntpEngine engine(protocol::head_to_head_params(),
                                core::TimePoint::epoch());
    core::Rng rng(42);
    std::int64_t t = 0;
    std::vector<double> offsets(1);
    for (int i = 0; i < 500; ++i) {
      t += 5'000'000'000;
      offsets[0] = rng.normal(0, 0.003);
      engine.on_round(core::TimePoint::from_ns(t), offsets);
    }
    return engine.accepted_offsets_ms();
  };
  const std::vector<double> baseline = run(false);
  const std::vector<double> profiled = run(true);
  ASSERT_EQ(baseline.size(), profiled.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i], profiled[i]) << "diverged at round " << i;
  }
}

}  // namespace
}  // namespace mntp::obs
