// Log substrate tests: spec tables, classifiers, generator, analyzer.
#include <gtest/gtest.h>

#include <cmath>

#include "logs/analyze.h"
#include "logs/classify.h"
#include "logs/generate.h"
#include "logs/spec.h"

namespace mntp::logs {
namespace {

using core::Rng;

TEST(Spec, PaperTablesWellFormed) {
  EXPECT_EQ(kPaperServers.size(), 19u);
  EXPECT_EQ(kPaperProviders.size(), 25u);
  std::uint64_t total = 0;
  for (const auto& s : kPaperServers) {
    EXPECT_FALSE(s.id.empty());
    EXPECT_GE(s.stratum, 1);
    EXPECT_LE(s.stratum, 2);
    EXPECT_GE(s.total_measurements, s.unique_clients);
    total += s.total_measurements;
  }
  // Table 1 sums to the paper's 209,447,922 measurements.
  EXPECT_EQ(total, 209'447'922ull);
  // Table 1's per-server counts sum to 15.3M; the paper's abstract quotes
  // 17.8M unique clients (the table presumably de-duplicates differently).
  std::uint64_t clients = 0;
  for (const auto& s : kPaperServers) clients += s.unique_clients;
  EXPECT_EQ(clients, 15'303'436ull);
}

TEST(Spec, ProviderCategoriesOrderedByLatency) {
  // Category medians must rank cloud < isp < broadband < mobile.
  double prev = 0.0;
  for (auto cat : {ProviderCategory::kCloud, ProviderCategory::kIsp,
                   ProviderCategory::kBroadband, ProviderCategory::kMobile}) {
    double sum = 0.0;
    int n = 0;
    for (const auto& p : kPaperProviders) {
      if (p.category == cat) {
        sum += p.min_owd_median_ms;
        ++n;
      }
    }
    const double mean = sum / n;
    EXPECT_GT(mean, prev);
    prev = mean;
  }
}

TEST(Classify, HostnameKeywordsResolveProviders) {
  const auto p = provider_from_hostname("host123.mobile.example.org");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(kPaperProviders[*p].category, ProviderCategory::kMobile);
  EXPECT_EQ(category_from_hostname("node.amazon.example.org"),
            ProviderCategory::kCloud);
  EXPECT_EQ(category_from_hostname("x.dsl.example.org"),
            ProviderCategory::kBroadband);
  EXPECT_EQ(category_from_hostname("y.telecom.example.org"),
            ProviderCategory::kIsp);
}

TEST(Classify, CaseInsensitive) {
  EXPECT_EQ(category_from_hostname("HOST1.MOBILE.EXAMPLE.ORG"),
            ProviderCategory::kMobile);
}

TEST(Classify, UnknownHostnameUnclassified) {
  EXPECT_FALSE(provider_from_hostname("plain.example.xyz").has_value());
  EXPECT_FALSE(category_from_hostname("").has_value());
}

TEST(Classify, LongestKeywordWins) {
  // "broadband" contains no other keyword; but a hostname with both
  // "net" (SP 6) and "wireless" (SP 23) must pick the longer keyword.
  const auto p = provider_from_hostname("a.wireless.example.org");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(kPaperProviders[*p].keyword, "wireless");
}

TEST(Classify, ProtocolFromPacket) {
  const auto sntp = ntp::NtpPacket::make_sntp_request(
      core::NtpTimestamp::from_parts(1, 2));
  EXPECT_EQ(classify_protocol(sntp), Protocol::kSntp);
  const auto full = ntp::NtpPacket::make_ntp_request(
      core::NtpTimestamp::from_parts(1, 2), 6, core::NtpTimestamp::from_parts(3, 4));
  EXPECT_EQ(classify_protocol(full), Protocol::kNtp);
}

TEST(Classify, OwdValidity) {
  ntp::NtpPacket p = ntp::NtpPacket::make_sntp_request(
      core::NtpTimestamp::from_parts(1, 2));
  EXPECT_TRUE(owd_measurement_valid(p));
  p.leap = ntp::LeapIndicator::kUnsynchronized;
  EXPECT_FALSE(owd_measurement_valid(p));
  p.leap = ntp::LeapIndicator::kNoWarning;
  p.transmit_ts = core::NtpTimestamp::unset();
  EXPECT_FALSE(owd_measurement_valid(p));
}

GeneratorParams test_params() {
  GeneratorParams p;
  p.scale = 1.0 / 5000.0;
  return p;
}

TEST(Generator, ClientCountsScale) {
  LogGenerator gen(test_params(), Rng(1));
  const ServerLog ag1 = gen.generate(0);  // AG1: 639,704 clients
  EXPECT_NEAR(static_cast<double>(ag1.clients.size()), 639'704.0 / 5000.0, 2.0);
  const ServerLog ci1 = gen.generate(1);  // CI1: 606 clients -> min 1
  EXPECT_GE(ci1.clients.size(), 1u);
}

TEST(Generator, Deterministic) {
  LogGenerator a(test_params(), Rng(2));
  LogGenerator b(test_params(), Rng(2));
  const ServerLog la = a.generate(0);
  const ServerLog lb = b.generate(0);
  ASSERT_EQ(la.clients.size(), lb.clients.size());
  for (std::size_t i = 0; i < la.clients.size(); ++i) {
    ASSERT_EQ(la.clients[i].hostname, lb.clients[i].hostname);
    ASSERT_EQ(la.clients[i].request_count, lb.clients[i].request_count);
  }
}

TEST(Generator, ClientsCarryParseableRequests) {
  LogGenerator gen(test_params(), Rng(3));
  const ServerLog log = gen.generate(0);
  for (const auto& c : log.clients) {
    const auto p = ntp::NtpPacket::parse(c.request_wire);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().mode, ntp::Mode::kClient);
  }
}

TEST(Generator, OwdsWithinObservedRange) {
  LogGenerator gen(test_params(), Rng(4));
  const ServerLog log = gen.generate(0);
  for (const auto& c : log.clients) {
    EXPECT_FALSE(c.owd_samples_ms.empty());
    for (float owd : c.owd_samples_ms) {
      if (owd < 0) continue;  // invalid marker
      EXPECT_GE(owd, 1.0F);
      EXPECT_LE(owd, 3000.0F);
    }
  }
}

TEST(Generator, IspInternalServersSkewIsp) {
  LogGenerator gen(GeneratorParams{.scale = 1.0}, Rng(5));
  const ServerLog ci1 = gen.generate(1);  // CI1, isp_internal
  std::size_t isp = 0;
  for (const auto& c : ci1.clients) {
    if (kPaperProviders[c.provider_index].category == ProviderCategory::kIsp) {
      ++isp;
    }
  }
  EXPECT_GT(static_cast<double>(isp) / ci1.clients.size(), 0.5);
}

TEST(Analyzer, ServerStatsCountsAndProtocolShares) {
  LogGenerator gen(GeneratorParams{.scale = 1.0 / 500.0}, Rng(6));
  const ServerLog log = gen.generate(0);  // AG1, public
  const ServerStats stats = LogAnalyzer::server_stats(log);
  EXPECT_EQ(stats.server_id, "AG1");
  EXPECT_EQ(stats.unique_clients, log.clients.size());
  EXPECT_EQ(stats.sntp_clients + stats.ntp_clients, log.clients.size());
  EXPECT_EQ(stats.total_measurements, log.total_requests());
  // Public server: majority SNTP (Fig 2).
  EXPECT_GT(stats.sntp_share(), 0.5);
}

TEST(Analyzer, IspInternalServersAreNtpHeavy) {
  LogGenerator gen(GeneratorParams{.scale = 1.0}, Rng(7));
  const ServerStats stats = LogAnalyzer::server_stats(gen.generate(1));  // CI1
  EXPECT_LT(stats.sntp_share(), 0.7);
}

TEST(Analyzer, MinOwdFiltersInvalidProbes) {
  ClientRecord c;
  c.owd_samples_ms = {-1.0F, 50.0F, 30.0F, -1.0F, 80.0F};
  const auto min = LogAnalyzer::client_min_owd_ms(c);
  ASSERT_TRUE(min.has_value());
  EXPECT_FLOAT_EQ(*min, 30.0F);
  ClientRecord all_invalid;
  all_invalid.owd_samples_ms = {-1.0F, -1.0F};
  EXPECT_FALSE(LogAnalyzer::client_min_owd_ms(all_invalid).has_value());
}

TEST(Analyzer, CategoryMediansReproducePaperOrdering) {
  LogGenerator gen(GeneratorParams{.scale = 1.0 / 200.0}, Rng(8));
  // A few large public servers give enough clients per category.
  std::vector<ServerLog> logs;
  logs.push_back(gen.generate(0));   // AG1
  logs.push_back(gen.generate(14));  // SU1
  const auto medians = LogAnalyzer::category_median_owd_ms(logs);
  const double cloud = medians[0], isp = medians[1], broadband = medians[2],
               mobile = medians[3];
  EXPECT_LT(cloud, isp);
  EXPECT_LT(isp, broadband);
  EXPECT_LT(broadband, mobile);
  // Paper headline numbers: ~40 / ~50 / ~250 / ~550 ms.
  EXPECT_NEAR(cloud, 40.0, 20.0);
  EXPECT_NEAR(isp, 50.0, 25.0);
  EXPECT_NEAR(broadband, 250.0, 100.0);
  EXPECT_NEAR(mobile, 550.0, 150.0);
}

TEST(Analyzer, MobileProvidersMostlySntp) {
  LogGenerator gen(GeneratorParams{.scale = 1.0 / 200.0}, Rng(9));
  const ServerLog log = gen.generate(14);  // SU1
  const auto stats = LogAnalyzer::provider_owd_stats(log, 5);
  bool saw_mobile = false;
  for (const auto& ps : stats) {
    if (ps.category == ProviderCategory::kMobile) {
      saw_mobile = true;
      EXPECT_GT(ps.sntp_share, 0.9) << ps.provider_name;
    }
  }
  EXPECT_TRUE(saw_mobile);
}

TEST(Analyzer, ProviderOrderingByMedianOwd) {
  LogGenerator gen(GeneratorParams{.scale = 1.0 / 300.0}, Rng(10));
  std::vector<std::vector<ProviderOwdStats>> per_server;
  per_server.push_back(LogAnalyzer::provider_owd_stats(gen.generate(0), 5));
  per_server.push_back(LogAnalyzer::provider_owd_stats(gen.generate(14), 5));
  const auto order = LogAnalyzer::order_by_median_owd(per_server);
  ASSERT_GT(order.size(), 10u);
  // Mobile providers (kMobile) must land in the top (slowest) quartile.
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    if (kPaperProviders[order[pos]].category == ProviderCategory::kMobile) {
      EXPECT_GT(pos, order.size() / 2) << "mobile provider ranked too fast";
    }
  }
}

TEST(Analyzer, MobileMinOwdSpreadIsWide) {
  // Fig 1's "linear trend": mobile clients' min OWDs spread near-uniform,
  // so the IQR is a large fraction of the median.
  LogGenerator gen(GeneratorParams{.scale = 1.0 / 200.0}, Rng(11));
  const auto stats = LogAnalyzer::provider_owd_stats(gen.generate(0), 10);
  for (const auto& ps : stats) {
    if (ps.category != ProviderCategory::kMobile) continue;
    const double iqr = ps.min_owd_ms.p75 - ps.min_owd_ms.p25;
    EXPECT_GT(iqr / ps.min_owd_ms.median, 0.5) << ps.provider_name;
  }
}

}  // namespace
}  // namespace mntp::logs
