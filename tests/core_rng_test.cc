#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "core/stats.h"

namespace mntp::core {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentDrawCount) {
  // Fork first, then the parent's subsequent draws must not change what
  // an identically-created fork yields.
  Rng parent1(7), parent2(7);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  (void)parent1.uniform(0, 1);  // perturb parent1 only
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveAndCoverage) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, IndexInRange) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    ASSERT_LT(rng.index(7), 7u);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.15);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, LognormalMedian) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.lognormal(std::log(4.0), 0.5));
  EXPECT_NEAR(percentile(xs, 50), 4.0, 0.2);
}

TEST(Rng, ParetoScaleAndTail) {
  Rng rng(14);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.pareto(2.0, 1.5));
  for (double x : xs) ASSERT_GE(x, 2.0);
  // Median of Pareto(xm, alpha) is xm * 2^(1/alpha).
  EXPECT_NEAR(percentile(xs, 50), 2.0 * std::pow(2.0, 1.0 / 1.5), 0.1);
}

TEST(Rng, ParetoTailIsHardBounded) {
  // The underlying uniform is clamped to >= 2^-53, so every draw obeys
  // xm * u^(-1/alpha) <= xm * 2^(53/alpha) with no downstream cap. The
  // bound must be finite for the shapes the channel models use.
  const double xm = 0.08, alpha = 1.5;
  const double bound = xm * std::pow(2.0, 53.0 / alpha);
  ASSERT_TRUE(std::isfinite(bound));
  EXPECT_DOUBLE_EQ(Rng::kParetoMinU, std::pow(2.0, -53.0));
  Rng rng(15);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.pareto(xm, alpha);
    ASSERT_GE(x, xm);
    ASSERT_LE(x, bound);
  }
}

TEST(Rng, DeriveStreamSeedIsConstexprAndDistinct) {
  // The stream-derivation rule is part of the reproducibility contract:
  // stream 0 is the plain splitmix64 finalizer of the base (which is
  // also how replicate r maps to stream r-1), and nearby streams/bases
  // must land on distinct seeds.
  static_assert(derive_stream_seed(7, 0) == splitmix64(7));
  static_assert(derive_stream_seed(7, 1) != derive_stream_seed(7, 2));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base = 0; base < 8; ++base) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      seeds.insert(derive_stream_seed(base, stream));
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 64u);
}

TEST(Rng, CanonicalIsOneDrawInUnitInterval) {
  Rng rng(16), mirror(16);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.canonical();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    // Exactly one engine draw per canonical(): the raw stream mirror
    // stays aligned.
    ASSERT_EQ(static_cast<double>(mirror.next_u64() >> 11) * 0x1p-53, u);
  }
}

TEST(Rng, ExponentialFastMomentsAndDrawCount) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.exponential_fast(3.0);
    ASSERT_GE(x, 0.0);
    ASSERT_TRUE(std::isfinite(x));
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 3.0, 0.05);
  // Draw-count contract: exactly one engine draw per variate.
  Rng a(18), b(18);
  (void)a.exponential_fast(1.0);
  (void)b.next_u64();
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NormalFastMoments) {
  Rng rng(19);
  std::vector<double> xs;
  xs.reserve(200000);
  for (int i = 0; i < 200000; ++i) xs.push_back(rng.normal_fast(1.5, 2.0));
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(mean, 1.5, 0.02);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.02);
  // The polar method's cached spare is a real normal draw too: the
  // 68% central band holds across even/odd draws alike.
  int in_band_even = 0, in_band_odd = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const bool in_band = std::fabs(xs[i] - 1.5) <= 2.0;
    (i % 2 == 0 ? in_band_even : in_band_odd) += in_band ? 1 : 0;
  }
  EXPECT_NEAR(in_band_even / 100000.0, 0.683, 0.01);
  EXPECT_NEAR(in_band_odd / 100000.0, 0.683, 0.01);
}

TEST(Rng, FillNormalMatchesSequentialFastDraws) {
  Rng a(20), b(20);
  std::vector<double> batch(9, 0.0);
  a.fill_normal(batch, 0.5, 1.25);
  for (double x : batch) {
    ASSERT_DOUBLE_EQ(x, b.normal_fast(0.5, 1.25));
  }
  // The spare-deviate cache state carries across the batch boundary.
  ASSERT_DOUBLE_EQ(a.normal_fast(0.5, 1.25), b.normal_fast(0.5, 1.25));
}

}  // namespace
}  // namespace mntp::core
