#include "core/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/stats.h"

namespace mntp::core {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentDrawCount) {
  // Fork first, then the parent's subsequent draws must not change what
  // an identically-created fork yields.
  Rng parent1(7), parent2(7);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  (void)parent1.uniform(0, 1);  // perturb parent1 only
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveAndCoverage) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, IndexInRange) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    ASSERT_LT(rng.index(7), 7u);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.15);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, LognormalMedian) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.lognormal(std::log(4.0), 0.5));
  EXPECT_NEAR(percentile(xs, 50), 4.0, 0.2);
}

TEST(Rng, ParetoScaleAndTail) {
  Rng rng(14);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.pareto(2.0, 1.5));
  for (double x : xs) ASSERT_GE(x, 2.0);
  // Median of Pareto(xm, alpha) is xm * 2^(1/alpha).
  EXPECT_NEAR(percentile(xs, 50), 2.0 * std::pow(2.0, 1.0 / 1.5), 0.1);
}

TEST(Rng, ParetoTailIsHardBounded) {
  // The underlying uniform is clamped to >= 2^-53, so every draw obeys
  // xm * u^(-1/alpha) <= xm * 2^(53/alpha) with no downstream cap. The
  // bound must be finite for the shapes the channel models use.
  const double xm = 0.08, alpha = 1.5;
  const double bound = xm * std::pow(2.0, 53.0 / alpha);
  ASSERT_TRUE(std::isfinite(bound));
  EXPECT_DOUBLE_EQ(Rng::kParetoMinU, std::pow(2.0, -53.0));
  Rng rng(15);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.pareto(xm, alpha);
    ASSERT_GE(x, xm);
    ASSERT_LE(x, bound);
  }
}

}  // namespace
}  // namespace mntp::core
