#include "core/fixed_function.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace mntp::core {
namespace {

TEST(FixedFunction, DefaultIsEmpty) {
  FixedFunction<int()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
}

TEST(FixedFunction, InvokesWithArgsAndResult) {
  FixedFunction<int(int, int)> fn([](int a, int b) { return a + b; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(2, 3), 5);
}

TEST(FixedFunction, SmallCaptureStaysInline) {
  const std::uint64_t before = fixed_function_heap_fallbacks();
  int hits = 0;
  FixedFunction<void()> fn([&hits] { ++hits; });
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(fixed_function_heap_fallbacks(), before);
}

TEST(FixedFunction, OversizedCaptureFallsBackToHeapAndCounts) {
  const std::uint64_t before = fixed_function_heap_fallbacks();
  std::array<std::uint64_t, 16> big{};  // 128 bytes > the 48-byte buffer
  big[0] = 41;
  FixedFunction<std::uint64_t()> fn([big] { return big[0] + 1; });
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 42u);
  EXPECT_EQ(fixed_function_heap_fallbacks(), before + 1);
}

TEST(FixedFunction, MoveTransfersCallableAndEmptiesSource) {
  int hits = 0;
  FixedFunction<void()> a([&hits] { ++hits; });
  FixedFunction<void()> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  FixedFunction<void()> c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(FixedFunction, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(7);
  FixedFunction<int()> fn([p = std::move(p)] { return *p; });
  FixedFunction<int()> moved(std::move(fn));
  EXPECT_EQ(moved(), 7);
}

struct DtorCounter {
  explicit DtorCounter(int* count) : count_(count) {}
  DtorCounter(DtorCounter&& other) noexcept
      : count_(std::exchange(other.count_, nullptr)) {}
  DtorCounter(const DtorCounter&) = delete;
  ~DtorCounter() {
    if (count_ != nullptr) ++*count_;
  }
  void operator()() const {}
  int* count_;
};

TEST(FixedFunction, DestroyRunsCaptureDestructorExactlyOnce) {
  int destroyed = 0;
  {
    FixedFunction<void()> fn{DtorCounter(&destroyed)};
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(FixedFunction, MoveDoesNotDoubleDestroy) {
  int destroyed = 0;
  {
    FixedFunction<void()> a{DtorCounter(&destroyed)};
    FixedFunction<void()> b(std::move(a));
    EXPECT_EQ(destroyed, 0);  // relocation moved, did not destroy the payload
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(FixedFunction, MoveAssignDestroysPreviousTarget) {
  int first = 0;
  int second = 0;
  FixedFunction<void()> fn{DtorCounter(&first)};
  fn = FixedFunction<void()>(DtorCounter(&second));
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);
  fn.reset();
  EXPECT_EQ(second, 1);
}

TEST(FixedFunction, ResetMakesEmptyAndIsIdempotent) {
  int destroyed = 0;
  FixedFunction<void()> fn{DtorCounter(&destroyed)};
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(destroyed, 1);
  fn.reset();
  EXPECT_EQ(destroyed, 1);
}

TEST(FixedFunction, EmplaceReplacesInPlace) {
  FixedFunction<int()> fn([] { return 1; });
  fn.emplace([] { return 2; });
  EXPECT_EQ(fn(), 2);
}

TEST(FixedFunction, HeapFallbackDestroysOnReset) {
  int destroyed = 0;
  struct Big {
    explicit Big(int* count) : counter(count) {}
    Big(Big&& other) noexcept : counter(std::exchange(other.counter, nullptr)) {}
    ~Big() {
      if (counter != nullptr) ++*counter;
    }
    void operator()() const {}
    int* counter;
    std::array<std::uint64_t, 16> pad{};
  };
  {
    FixedFunction<void()> fn{Big(&destroyed)};
    EXPECT_FALSE(fn.is_inline());
    FixedFunction<void()> moved(std::move(fn));  // heap pointer handoff
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

}  // namespace
}  // namespace mntp::core
