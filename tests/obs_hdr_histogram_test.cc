#include "obs/hdr_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"

namespace mntp::obs {
namespace {

// Exact nearest-rank quantile on a sorted copy: the reference the
// bucketed estimate must approximate within its relative-error bound.
double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  if (xs.empty()) return 0.0;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  rank = std::max<std::size_t>(1, std::min(rank, xs.size()));
  return xs[rank - 1];
}

TEST(HdrHistogram, EmptyIsZeroEverything) {
  HdrHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.nan_count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(HdrHistogram, RelativeErrorBound) {
  // sub_bucket_bits = 5 => relative error <= 2^-6 ~ 1.57%.
  HdrHistogram h;
  core::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.lognormal(2.0, 1.5);  // spans several octaves
    xs.push_back(v);
    h.record(v);
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact = exact_quantile(xs, q);
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, exact * 0.04) << "q=" << q;
  }
  // Extrema are exact regardless of bucketing.
  EXPECT_DOUBLE_EQ(h.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(h.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(HdrHistogram, NegativesZeroAndClamping) {
  HdrHistogram h;
  h.record(-50.0);
  h.record(-50.0);
  h.record(0.0);          // below min_magnitude: zero bucket
  h.record(1e-6);         // also zero bucket
  h.record(25.0);
  h.record(1e12);         // above max_magnitude: clamps into top bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), -50.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);  // min/max exact even when clamped
  // Median (rank 3 of 6) lands in the zero bucket.
  EXPECT_NEAR(h.quantile(0.5), 0.0, 1e-3);
  // Low quantile is negative, high is large.
  EXPECT_LT(h.quantile(0.1), -45.0);
  EXPECT_GT(h.quantile(0.99), 1e8);
}

TEST(HdrHistogram, NanCountedSeparately) {
  HdrHistogram h;
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(1.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum());  // NaN never poisons the moments
  EXPECT_FALSE(std::isnan(h.quantile(0.5)));
}

TEST(HdrHistogram, MergeEquivalentToSingleRecording) {
  core::Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.normal(0.0, 40.0));

  HdrHistogram whole;
  for (double v : xs) whole.record(v);

  HdrHistogram a, b, c;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(xs[i]);
  }
  HdrHistogram merged = a;
  merged.merge(b);
  merged.merge(c);
  EXPECT_EQ(merged, whole);  // bit-for-bit, not approximately
}

TEST(HdrHistogram, MergeIsCommutativeAndAssociativeBitForBit) {
  core::Rng rng(13);
  HdrHistogram parts[4];
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 500; ++i) {
      parts[p].record(rng.lognormal(0.0, 2.0) - (p % 2 ? 100.0 : 0.0));
    }
  }
  // Left fold in order 0,1,2,3.
  HdrHistogram left = parts[0];
  for (int p = 1; p < 4; ++p) left.merge(parts[p]);
  // Reverse order.
  HdrHistogram right = parts[3];
  for (int p = 2; p >= 0; --p) right.merge(parts[p]);
  // Balanced tree: (0+1) + (2+3).
  HdrHistogram t01 = parts[0], t23 = parts[2];
  t01.merge(parts[1]);
  t23.merge(parts[3]);
  HdrHistogram tree = t01;
  tree.merge(t23);

  EXPECT_EQ(left, right);
  EXPECT_EQ(left, tree);
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());
  EXPECT_DOUBLE_EQ(left.quantile(0.9), tree.quantile(0.9));
}

TEST(HdrHistogram, MergeRejectsLayoutMismatch) {
  HdrHistogram a;
  HdrHistogram b(HdrHistogramOptions{.sub_bucket_bits = 6});
  EXPECT_FALSE(a.same_layout(b));
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(HdrHistogram, BucketsAscendAndSumToCount) {
  HdrHistogram h;
  core::Rng rng(17);
  for (int i = 0; i < 1000; ++i) h.record(rng.normal(0.0, 10.0));
  const auto buckets = h.buckets();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    total += buckets[i].second;
    if (i > 0) EXPECT_GT(buckets[i].first, buckets[i - 1].first);
  }
  EXPECT_EQ(total, h.count());
}

TEST(HdrHistogram, AgreesWithP2OnSmoothStream) {
  // The two estimators answer the same question with different error
  // models; on a well-behaved stream they must agree to a few percent.
  HdrHistogram hdr;
  P2Quantile p2(0.9);
  core::Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.lognormal(1.0, 0.8);
    xs.push_back(v);
    hdr.record(v);
    p2.add(v);
  }
  const double exact = exact_quantile(xs, 0.9);
  EXPECT_NEAR(hdr.quantile(0.9), exact, exact * 0.04);
  EXPECT_NEAR(p2.estimate(), exact, exact * 0.08);
}

TEST(ShardedHdrHistogram, ThreadCountDoesNotChangeMergedResult) {
  // The same multiset of samples recorded under different parallelism
  // must produce the same merged histogram — the property the replicated
  // benches rely on for --threads invariance.
  core::Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.normal(5.0, 100.0));

  std::vector<HdrHistogram> merged;
  for (std::size_t workers : {1u, 4u}) {
    MetricsRegistry reg;
    ShardedHdrHistogram* sh = reg.hdr_histogram("t");
    core::ThreadPool pool(workers);
    pool.parallel_for(0, 8, [&](std::size_t slot) {
      for (std::size_t i = slot; i < xs.size(); i += 8) sh->record(xs[i]);
    });
    merged.push_back(sh->merged());  // after the parallel join, per contract
  }
  EXPECT_EQ(merged[0], merged[1]);
  EXPECT_EQ(merged[0].count(), xs.size());
}

TEST(ShardedHdrHistogram, RegistrySnapshotExportsQuantiles) {
  MetricsRegistry reg;
  ShardedHdrHistogram* sh =
      reg.hdr_histogram("ntp.owd", {}, {{"dir", "up"}});
  for (int i = 1; i <= 100; ++i) sh->record(static_cast<double>(i));
  // Same (name, labels) returns the same handle; a different layout for
  // an existing name is a programming error.
  EXPECT_EQ(sh, reg.hdr_histogram("ntp.owd", {}, {{"dir", "up"}}));

  bool found = false;
  for (const auto& s : reg.snapshot()) {
    if (s.name != "ntp.owd") continue;
    found = true;
    EXPECT_EQ(s.count, 100u);
    EXPECT_NEAR(s.p50, 50.0, 2.0);
    EXPECT_NEAR(s.p99, 99.0, 3.0);
    ASSERT_GE(s.buckets.size(), 2u);
    // Report-schema compatibility: ascending bounds, +inf terminal.
    EXPECT_TRUE(std::isinf(s.buckets.back().first));
    std::uint64_t total = 0;
    for (const auto& [le, n] : s.buckets) total += n;
    EXPECT_EQ(total, 100u);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace mntp::obs
