#include "sim/replicate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/rng.h"

namespace mntp::sim {
namespace {

TEST(ReplicateSeed, ReplicateZeroIsIdentity) {
  // `--replicates 1` must BE the single-run experiment, bit for bit.
  EXPECT_EQ(replicate_seed(8, 0), 8u);
  EXPECT_EQ(replicate_seed(777, 0), 777u);
  EXPECT_EQ(replicate_seed(0, 0), 0u);
}

TEST(ReplicateSeed, StreamsAreDistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::size_t r = 0; r < 256; ++r) {
    seen.insert(replicate_seed(8, r));
  }
  EXPECT_EQ(seen.size(), 256u);
  // Derivation is a pure function: pinned values guard the on-disk
  // meaning of "--replicates K" against accidental reseeding changes.
  EXPECT_EQ(replicate_seed(8, 1), core::splitmix64(8));
  EXPECT_EQ(replicate_seed(8, 2),
            core::splitmix64(8 + 0x9E3779B97F4A7C15ull));
}

TEST(ReplicateSeed, PrefixStableUnderMoreReplicates) {
  // Adding replicates never perturbs earlier ones.
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_EQ(replicate_seed(42, r), replicate_seed(42, r));
  }
}

std::vector<MetricValue> seed_scenario(std::uint64_t seed,
                                       std::size_t replicate) {
  core::Rng rng(seed);
  return {
      {"seed_lo", static_cast<double>(seed & 0xffffffffu)},
      {"draw", rng.uniform(0.0, 1.0)},
      {"replicate", static_cast<double>(replicate)},
  };
}

TEST(ReplicationRunner, SerialAndParallelReportsAreBitIdentical) {
  ReplicationRunner serial({.replicates = 16, .threads = 1});
  ReplicationRunner parallel({.replicates = 16, .threads = 4});
  const ReplicateReport a = serial.run(8, seed_scenario);
  const ReplicateReport b = parallel.run(8, seed_scenario);

  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  EXPECT_EQ(a.base_seed, b.base_seed);
  EXPECT_EQ(a.replicates, b.replicates);
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name);
    ASSERT_EQ(a.metrics[i].per_replicate.size(),
              b.metrics[i].per_replicate.size());
    for (std::size_t r = 0; r < a.metrics[i].per_replicate.size(); ++r) {
      // Exact equality, not near: determinism is the contract.
      EXPECT_EQ(a.metrics[i].per_replicate[r], b.metrics[i].per_replicate[r])
          << a.metrics[i].name << " replicate " << r;
    }
    EXPECT_EQ(a.metrics[i].summary.median, b.metrics[i].summary.median);
    EXPECT_EQ(a.metrics[i].summary.mean, b.metrics[i].summary.mean);
  }
}

TEST(ReplicationRunner, ReplicateZeroUsesBaseSeedVerbatim) {
  ReplicationRunner runner({.replicates = 3, .threads = 1});
  const ReplicateReport report = runner.run(8, seed_scenario);
  const ReplicatedMetric* seed_lo = report.find("seed_lo");
  ASSERT_NE(seed_lo, nullptr);
  EXPECT_EQ(seed_lo->per_replicate[0], 8.0);
}

TEST(ReplicationRunner, ResultsIndexedByReplicateNotCompletionOrder) {
  ReplicationRunner runner({.replicates = 8, .threads = 4});
  const ReplicateReport report = runner.run(1, seed_scenario);
  const ReplicatedMetric* idx = report.find("replicate");
  ASSERT_NE(idx, nullptr);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(idx->per_replicate[r], static_cast<double>(r));
  }
}

TEST(ReplicationRunner, AggregatesSummaryAcrossReplicates) {
  ReplicationRunner runner({.replicates = 5, .threads = 1});
  const ReplicateReport report =
      runner.run(0, [](std::uint64_t, std::size_t replicate) {
        return std::vector<MetricValue>{
            {"value", static_cast<double>(replicate) * 10.0}};
      });
  const ReplicatedMetric* m = report.find("value");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->summary.count, 5u);
  EXPECT_DOUBLE_EQ(m->summary.median, 20.0);
  EXPECT_DOUBLE_EQ(m->summary.mean, 20.0);
  EXPECT_DOUBLE_EQ(m->summary.min, 0.0);
  EXPECT_DOUBLE_EQ(m->summary.max, 40.0);
  EXPECT_DOUBLE_EQ(report.median("value"), 20.0);
  EXPECT_DOUBLE_EQ(report.median("missing", -1.0), -1.0);
  EXPECT_EQ(report.find("missing"), nullptr);
}

TEST(ReplicationRunner, ZeroReplicatesClampedToOne) {
  ReplicationRunner runner({.replicates = 0, .threads = 1});
  const ReplicateReport report = runner.run(8, seed_scenario);
  EXPECT_EQ(report.replicates, 1u);
}

TEST(ReplicationRunner, MismatchedMetricNamesThrow) {
  ReplicationRunner runner({.replicates = 2, .threads = 1});
  EXPECT_THROW(
      (void)runner.run(0,
                       [](std::uint64_t, std::size_t replicate) {
                         return std::vector<MetricValue>{
                             {replicate == 0 ? "a" : "b", 1.0}};
                       }),
      std::runtime_error);
  EXPECT_THROW(
      (void)runner.run(0,
                       [](std::uint64_t, std::size_t replicate) {
                         std::vector<MetricValue> m{{"a", 1.0}};
                         if (replicate == 1) m.push_back({"extra", 2.0});
                         return m;
                       }),
      std::runtime_error);
}

ReplicateResult rich_scenario(std::uint64_t seed, std::size_t replicate) {
  core::Rng rng(seed);
  ReplicateResult r;
  r.metrics.push_back({"replicate", static_cast<double>(replicate)});
  DistributionValue offsets{"offset_ms", obs::HdrHistogram{}};
  DistributionValue residuals{"resid_ms", obs::HdrHistogram{}};
  for (int i = 0; i < 200; ++i) {
    offsets.histogram.record(rng.normal(0.0, 25.0));
    residuals.histogram.record(rng.lognormal(0.0, 1.0));
  }
  r.distributions.push_back(std::move(offsets));
  r.distributions.push_back(std::move(residuals));
  return r;
}

TEST(ReplicationRunner, RichScenarioMergesDistributionsAcrossReplicates) {
  ReplicationRunner runner({.replicates = 4, .threads = 1});
  const ReplicateReport report =
      runner.run(8, ReplicationRunner::RichScenario(rich_scenario));

  ASSERT_EQ(report.distributions.size(), 2u);
  EXPECT_EQ(report.distributions[0].name, "offset_ms");
  EXPECT_EQ(report.distributions[1].name, "resid_ms");
  // 4 replicates x 200 samples each land in the merged histogram.
  EXPECT_EQ(report.distributions[0].merged.count(), 800u);
  EXPECT_EQ(report.find_distribution("offset_ms"),
            &report.distributions[0]);
  EXPECT_EQ(report.find_distribution("missing"), nullptr);
  // Scalar metrics aggregate exactly as in the plain-scenario path.
  const ReplicatedMetric* idx = report.find("replicate");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->per_replicate.size(), 4u);
}

TEST(ReplicationRunner, RichScenarioThreadCountDoesNotChangeDistributions) {
  const ReplicationRunner::RichScenario scenario(rich_scenario);
  ReplicationRunner serial({.replicates = 8, .threads = 1});
  ReplicationRunner parallel({.replicates = 8, .threads = 4});
  const ReplicateReport a = serial.run(8, scenario);
  const ReplicateReport b = parallel.run(8, scenario);

  ASSERT_EQ(a.distributions.size(), b.distributions.size());
  for (std::size_t i = 0; i < a.distributions.size(); ++i) {
    EXPECT_EQ(a.distributions[i].name, b.distributions[i].name);
    // Bit-for-bit, not approximately: slot-order merging plus the
    // order-insensitive HdrHistogram::merge make --threads invisible.
    EXPECT_EQ(a.distributions[i].merged, b.distributions[i].merged);
  }
}

TEST(ReplicationRunner, RichScenarioMismatchedDistributionNamesThrow) {
  ReplicationRunner runner({.replicates = 2, .threads = 1});
  EXPECT_THROW(
      (void)runner.run(
          0, ReplicationRunner::RichScenario(
                 [](std::uint64_t, std::size_t replicate) {
                   ReplicateResult r;
                   r.metrics.push_back({"m", 1.0});
                   r.distributions.push_back(
                       {replicate == 0 ? "a" : "b", obs::HdrHistogram{}});
                   return r;
                 })),
      std::runtime_error);
}

TEST(ReplicationRunner, ParallelRunInvokesEveryReplicateOnce) {
  std::atomic<int> calls{0};
  ReplicationRunner runner({.replicates = 32, .threads = 4});
  const ReplicateReport report =
      runner.run(3, [&calls](std::uint64_t seed, std::size_t) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return std::vector<MetricValue>{
            {"seed_hash", static_cast<double>(seed % 1000)}};
      });
  EXPECT_EQ(calls.load(), 32);
  EXPECT_EQ(report.metrics[0].per_replicate.size(), 32u);
}

}  // namespace
}  // namespace mntp::sim
