// Cross-run diff engine (obs/diff.h): per-kind significance semantics,
// the bench_compare.py gate math, profile span attribution, accounting
// reconciliation classes, query-trace share shifts, timeline divergence
// scoring, and the load/kind-mismatch error paths. All fixtures are
// written to gtest's temp dir so the suite runs from any CWD.
#include "obs/diff.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/json.h"

namespace mntp::obs {
namespace {

std::string write_file(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "obs_diff_" + name;
  std::ofstream out(path);
  out << content;
  EXPECT_TRUE(out.good()) << path;
  return path;
}

std::string bench_doc(double engine_median, double engine_mad,
                      bool with_tuner = true) {
  std::string doc =
      "{\"schema_version\":1,\"kind\":\"mntp_perf_suite\",\"reps\":3,"
      "\"workloads\":[{\"name\":\"engine_round\",\"median_us\":" +
      std::to_string(engine_median) +
      ",\"mad_us\":" + std::to_string(engine_mad) + "}";
  if (with_tuner) {
    doc += ",{\"name\":\"tuner_grid_slice\",\"median_us\":200.0,"
           "\"mad_us\":5.0}";
  }
  return doc + "]}";
}

std::string profile_doc(const std::string& run, double round_dur,
                        double round_self) {
  std::string doc =
      "{\"traceEvents\":[{\"ph\":\"M\",\"name\":\"process_name\","
      "\"args\":{\"name\":\"" + run + "\"}}";
  for (int i = 0; i < 4; ++i) {
    doc += ",{\"ph\":\"X\",\"name\":\"mntp.engine.round\",\"ts\":" +
           std::to_string(i * 1000) + ",\"dur\":" + std::to_string(round_dur) +
           ",\"args\":{\"self_us\":" + std::to_string(round_self) + "}}";
    doc += ",{\"ph\":\"X\",\"name\":\"ntp.query_engine.exchange\",\"ts\":" +
           std::to_string(i * 1000 + 10) +
           ",\"dur\":20,\"args\":{\"self_us\":20}}";
  }
  doc += ",{\"ph\":\"X\",\"name\":\"sim.run\",\"ts\":0,\"dur\":5000,"
         "\"args\":{\"self_us\":100}}]}";
  return doc;
}

std::string report_doc(double minted, double drift, bool with_extra) {
  std::string doc =
      "{\"type\":\"meta\",\"kind\":\"mntp_report\",\"schema_version\":1,"
      "\"run\":\"r\"}\n"
      "{\"type\":\"metric\",\"kind\":\"counter\",\"name\":"
      "\"mntp.queries.minted\",\"labels\":{},\"value\":" +
      std::to_string(minted) + "}\n"
      "{\"type\":\"metric\",\"kind\":\"gauge\",\"name\":\"sim.drift_ppm\","
      "\"labels\":{\"node\":\"a\"},\"value\":" + std::to_string(drift) + "}\n";
  if (with_extra) {
    doc += "{\"type\":\"metric\",\"kind\":\"counter\",\"name\":"
           "\"net.packets\",\"labels\":{},\"value\":10}\n";
  }
  return doc;
}

std::string query_trace_doc(int accepted, int rejected) {
  std::string doc =
      "{\"type\":\"meta\",\"kind\":\"mntp_query_trace\",\"schema_version\":1,"
      "\"run\":\"q\"}\n";
  for (int i = 0; i < accepted; ++i) {
    doc += "{\"type\":\"query\",\"id\":" + std::to_string(i) +
           ",\"kind\":\"ntp\",\"stages\":[{\"stage\":\"verdict\","
           "\"reason\":\"accepted\"}]}\n";
  }
  for (int i = 0; i < rejected; ++i) {
    doc += "{\"type\":\"query\",\"id\":" + std::to_string(accepted + i) +
           ",\"kind\":\"ntp\",\"stages\":[{\"stage\":\"verdict\","
           "\"reason\":\"popcorn\"}]}\n";
  }
  return doc;
}

std::string timeline_doc(double offset) {
  std::string doc =
      "{\"type\":\"meta\",\"kind\":\"mntp_timeline\",\"schema_version\":1,"
      "\"run\":\"t\"}\n"
      "{\"type\":\"series\",\"name\":\"mntp.offset_us\",\"labels\":{},"
      "\"points\":[";
  for (int i = 0; i < 16; ++i) {
    const double mean = (i % 2 == 0 ? 1.0 : -1.0) + offset;
    if (i > 0) doc += ",";
    doc += "[" + std::to_string(i * 100) + "," + std::to_string(mean - 0.5) +
           "," + std::to_string(mean) + "," + std::to_string(mean + 0.5) +
           "," + std::to_string(mean) + ",4]";
  }
  return doc + "]}\n";
}

const DiffEntry* find_entry(const DiffResult& r, const std::string& name) {
  for (const DiffSection& s : r.sections) {
    for (const DiffEntry& e : s.entries) {
      if (e.name == name) return &e;
    }
  }
  return nullptr;
}

TEST(DiffBench, SelfDiffIsCleanAndExitsZero) {
  const std::string p = write_file("bench_a.json", bench_doc(1000.0, 10.0));
  auto r = diff_files(p, p, {});
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().kind, DiffKind::kBench);
  EXPECT_EQ(r.value().significant, 0u);
  EXPECT_EQ(r.value().regressions, 0u);
  EXPECT_EQ(r.value().exit_code(), 0);
}

TEST(DiffBench, GateMatchesBenchCompareAllowance) {
  // limit = 1000 * (1 + 0.5) + max(200, 4*10) = 1700: exactly at the
  // limit passes (bench_compare uses <=), one microsecond over fails.
  const std::string base = write_file("bench_b.json", bench_doc(1000.0, 10.0));
  const std::string at = write_file("bench_c.json", bench_doc(1700.0, 10.0));
  const std::string over = write_file("bench_d.json", bench_doc(1701.0, 10.0));

  auto r_at = diff_files(base, at, {});
  ASSERT_TRUE(r_at.ok());
  EXPECT_EQ(r_at.value().regressions, 0u);
  EXPECT_EQ(r_at.value().exit_code(), 0);

  auto r_over = diff_files(base, over, {});
  ASSERT_TRUE(r_over.ok());
  EXPECT_EQ(r_over.value().regressions, 1u);
  EXPECT_EQ(r_over.value().exit_code(), 1);
  const DiffEntry* e = find_entry(r_over.value(), "engine_round");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->regression);
  EXPECT_EQ(e->cls, "changed");
  // Regressions rank first.
  EXPECT_EQ(r_over.value().sections[0].entries[0].name, "engine_round");
}

TEST(DiffBench, ImprovementIsSignificantButNotRegression) {
  const std::string base = write_file("bench_e.json", bench_doc(2000.0, 10.0));
  const std::string fast = write_file("bench_f.json", bench_doc(500.0, 10.0));
  auto r = diff_files(base, fast, {});
  ASSERT_TRUE(r.ok());
  const DiffEntry* e = find_entry(r.value(), "engine_round");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->significant);
  EXPECT_FALSE(e->regression);
  EXPECT_EQ(e->note, "improvement");
  EXPECT_EQ(r.value().exit_code(), 0);
}

TEST(DiffBench, MissingWorkloadFailsNewWorkloadNotes) {
  const std::string both = write_file("bench_g.json", bench_doc(1000.0, 10.0));
  const std::string solo =
      write_file("bench_h.json", bench_doc(1000.0, 10.0, false));

  auto removed = diff_files(both, solo, {});
  ASSERT_TRUE(removed.ok());
  const DiffEntry* gone = find_entry(removed.value(), "tuner_grid_slice");
  ASSERT_NE(gone, nullptr);
  EXPECT_EQ(gone->cls, "removed");
  EXPECT_TRUE(gone->regression);
  EXPECT_EQ(removed.value().exit_code(), 1);

  auto added = diff_files(solo, both, {});
  ASSERT_TRUE(added.ok());
  const DiffEntry* fresh = find_entry(added.value(), "tuner_grid_slice");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->cls, "added");
  EXPECT_FALSE(fresh->regression);
  EXPECT_EQ(added.value().exit_code(), 0);
}

TEST(DiffProfile, PerturbedSpanIsTopContributor) {
  const std::string base =
      write_file("prof_a.json", profile_doc("base", 100.0, 80.0));
  const std::string pert =
      write_file("prof_b.json", profile_doc("pert", 400.0, 380.0));
  auto r = diff_files(base, pert, {});
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().kind, DiffKind::kProfile);
  EXPECT_EQ(r.value().a_run, "base");
  EXPECT_EQ(r.value().b_run, "pert");
  ASSERT_FALSE(r.value().sections.empty());
  const DiffEntry& top = r.value().sections[0].entries[0];
  EXPECT_EQ(top.name, "mntp.engine.round");
  EXPECT_TRUE(top.regression);
  // Only one span moved, so it owns the entire contribution share.
  EXPECT_DOUBLE_EQ(top.score, 1.0);
  EXPECT_DOUBLE_EQ(top.delta, 4 * (380.0 - 80.0));
  EXPECT_EQ(r.value().exit_code(), 1);

  auto self = diff_files(base, base, {});
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self.value().significant, 0u);
  EXPECT_EQ(self.value().exit_code(), 0);
}

TEST(DiffReport, AccountingCountersReconcileExactly) {
  const std::string a =
      write_file("rep_a.jsonl", report_doc(100, 10.0, true));
  // Accounting counter off by one, gauge within tolerance, one counter
  // removed: the shift and the removal gate, the gauge drift does not.
  const std::string b =
      write_file("rep_b.jsonl", report_doc(101, 11.0, false));

  auto self = diff_files(a, a, {});
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self.value().kind, DiffKind::kReport);
  EXPECT_EQ(self.value().significant, 0u);
  const DiffEntry* minted = find_entry(self.value(), "mntp.queries.minted");
  ASSERT_NE(minted, nullptr);
  EXPECT_EQ(minted->cls, "exact");

  auto r = diff_files(a, b, {});
  ASSERT_TRUE(r.ok());
  const DiffEntry* shifted = find_entry(r.value(), "mntp.queries.minted");
  ASSERT_NE(shifted, nullptr);
  EXPECT_EQ(shifted->cls, "shifted");
  EXPECT_TRUE(shifted->regression);
  const DiffEntry* gauge = find_entry(r.value(), "sim.drift_ppm{node=a}");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->cls, "equal");
  EXPECT_FALSE(gauge->significant);
  const DiffEntry* removed = find_entry(r.value(), "net.packets");
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->cls, "removed");
  EXPECT_TRUE(removed->regression);
  EXPECT_EQ(r.value().regressions, 2u);
  EXPECT_EQ(r.value().exit_code(), 1);
}

TEST(DiffQueryTrace, ShareShiftIsSignificant) {
  const std::string a = write_file("qt_a.jsonl", query_trace_doc(150, 150));
  const std::string b = write_file("qt_b.jsonl", query_trace_doc(285, 15));

  auto self = diff_files(a, a, {});
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self.value().kind, DiffKind::kQueryTrace);
  EXPECT_EQ(self.value().significant, 0u);

  auto r = diff_files(a, b, {});
  ASSERT_TRUE(r.ok());
  const DiffEntry* pop = find_entry(r.value(), "ntp/popcorn");
  ASSERT_NE(pop, nullptr);
  EXPECT_EQ(pop->cls, "shifted");
  EXPECT_TRUE(pop->significant);
  EXPECT_GT(pop->score, 4.0);  // default sigma
  EXPECT_EQ(r.value().exit_code(), 1);
}

TEST(DiffTimeline, DivergenceScoresAgainstOwnSpread) {
  const std::string a = write_file("tl_a.jsonl", timeline_doc(0.0));
  // Shift every mean by 3x the series' own stddev (1.0): RMS/stddev = 3,
  // well past the 0.25 default divergence threshold.
  const std::string b = write_file("tl_b.jsonl", timeline_doc(3.0));

  auto self = diff_files(a, a, {});
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self.value().kind, DiffKind::kTimeline);
  EXPECT_EQ(self.value().significant, 0u);

  auto r = diff_files(a, b, {});
  ASSERT_TRUE(r.ok());
  const DiffEntry* s = find_entry(r.value(), "mntp.offset_us");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->significant);
  EXPECT_NEAR(s->score, 3.0, 0.15);  // 3 / sample-stddev(+-1) ~ 2.90
  EXPECT_NEAR(s->delta, 3.0, 1e-9);
  EXPECT_EQ(r.value().exit_code(), 1);
}

TEST(DiffErrors, MixedKindsMalformedAndUnsupported) {
  const std::string bench = write_file("err_a.json", bench_doc(1000.0, 10.0));
  const std::string report = write_file("err_b.jsonl", report_doc(1, 1, false));
  auto mixed = diff_files(bench, report, {});
  ASSERT_FALSE(mixed.ok());
  EXPECT_NE(mixed.error().message.find("artifact kinds differ"),
            std::string::npos);

  auto missing = diff_files(bench, "/nonexistent/no.json", {});
  EXPECT_FALSE(missing.ok());

  const std::string garbage = write_file("err_c.json", "not json at all\n");
  auto bad = diff_files(garbage, bench, {});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("err_c.json"), std::string::npos);

  const std::string trace = write_file(
      "err_d.jsonl",
      "{\"type\":\"meta\",\"kind\":\"mntp_trace_events\","
      "\"schema_version\":1}\n");
  auto undiffable = diff_files(trace, trace, {});
  ASSERT_FALSE(undiffable.ok());
  EXPECT_NE(undiffable.error().message.find("not diffable"),
            std::string::npos);

  const std::string delta = write_file(
      "err_e.json", "{\"kind\":\"mntp_perf_delta\",\"schema_version\":1}");
  auto unsupported = diff_files(delta, delta, {});
  ASSERT_FALSE(unsupported.ok());
  EXPECT_NE(unsupported.error().message.find("unsupported artifact kind"),
            std::string::npos);
}

TEST(DiffRender, JsonOutputParsesAndMatchesTallies) {
  const std::string base = write_file("rj_a.json", bench_doc(1000.0, 10.0));
  const std::string over = write_file("rj_b.json", bench_doc(3000.0, 10.0));
  auto r = diff_files(base, over, {});
  ASSERT_TRUE(r.ok());
  const std::string json = render_diff_json(r.value(), {});
  auto doc = core::Json::parse(json);
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  EXPECT_EQ(doc.value()["kind"].as_string(), "mntp_diff");
  EXPECT_EQ(doc.value()["artifact_kind"].as_string(), "bench");
  EXPECT_EQ(doc.value()["exit_hint"].as_int(), 1);
  EXPECT_EQ(doc.value()["regressions"].as_int(),
            static_cast<std::int64_t>(r.value().regressions));
  // The text renderer ends on the verdict line scripts grep for.
  const std::string text = render_diff_text(r.value(), {});
  EXPECT_NE(text.find("-> exit 1"), std::string::npos);
}

}  // namespace
}  // namespace mntp::obs
