// Pool, query engine, and SNTP client tests: one full exchange over
// simulated links, end to end.
#include <gtest/gtest.h>

#include "ntp/pool.h"
#include "ntp/sntp_client.h"
#include "ntp/transport.h"
#include "sim/simulation.h"

namespace mntp::ntp {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

sim::OscillatorParams clock_with_offset(double offset_s) {
  sim::OscillatorParams p;
  p.initial_offset_s = offset_s;
  return p;
}

struct Fixture {
  explicit Fixture(double client_offset_s = 0.0, PoolParams pool_params = {})
      : rng(5),
        clock(clock_with_offset(client_offset_s), rng.fork()),
        pool(pool_params, rng.fork()),
        engine(sim, clock) {}

  Rng rng;
  sim::Simulation sim;
  sim::DisciplinedClock clock;
  ServerPool pool;
  QueryEngine engine;
};

TEST(ServerPool, RejectsBadParams) {
  PoolParams p;
  p.server_count = 0;
  EXPECT_THROW(ServerPool(p, Rng(1)), std::invalid_argument);
  PoolParams q;
  q.server_count = 2;
  q.false_ticker_count = 3;
  EXPECT_THROW(ServerPool(q, Rng(1)), std::invalid_argument);
}

TEST(ServerPool, FalseTickersPlacedLast) {
  PoolParams p;
  p.server_count = 5;
  p.false_ticker_count = 2;
  ServerPool pool(p, Rng(2));
  EXPECT_FALSE(pool.is_false_ticker(0));
  EXPECT_FALSE(pool.is_false_ticker(2));
  EXPECT_TRUE(pool.is_false_ticker(3));
  EXPECT_TRUE(pool.is_false_ticker(4));
  EXPECT_GE(std::abs(pool.server(3).params().clock_offset_s), 0.1);
}

TEST(ServerPool, PickCoversAllMembers) {
  ServerPool pool(PoolParams{}, Rng(3));
  std::vector<int> hits(pool.size(), 0);
  for (int i = 0; i < 2000; ++i) ++hits[pool.pick_index()];
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_GT(hits[i], 100) << "member " << i;
  }
}

TEST(ServerPool, EndpointComposesLastHop) {
  Fixture f;
  const ServerEndpoint with_hop = f.pool.endpoint(0, nullptr, nullptr);
  EXPECT_EQ(with_hop.up.hop_count(), 1u);
  EXPECT_EQ(with_hop.down.hop_count(), 1u);
}

TEST(QueryEngine, PerfectSetupMeasuresNearZeroOffset) {
  Fixture f;
  bool done = false;
  f.engine.query(f.pool.endpoint(0, nullptr, nullptr), QueryOptions{},
                 [&](core::Result<SntpSample> r) {
                   done = true;
                   ASSERT_TRUE(r.ok());
                   // Bounded by path asymmetry + jitter: a few ms.
                   EXPECT_LT(r.value().offset.abs().to_millis(), 15.0);
                   EXPECT_GT(r.value().delay.to_millis(), 0.0);
                   EXPECT_GE(r.value().server_stratum, 1);
                   EXPECT_LE(r.value().server_stratum, 2);
                 });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.engine.requests_sent(), 1u);
  EXPECT_EQ(f.engine.responses_received(), 1u);
}

TEST(QueryEngine, MeasuresClientClockError) {
  Fixture f(/*client_offset_s=*/-0.2);  // client 200 ms behind
  bool done = false;
  f.engine.query(f.pool.endpoint(0, nullptr, nullptr), QueryOptions{},
                 [&](core::Result<SntpSample> r) {
                   done = true;
                   ASSERT_TRUE(r.ok());
                   EXPECT_NEAR(r.value().offset.to_millis(), 200.0, 15.0);
                 });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(QueryEngine, MeasuresFalseTickerOffset) {
  PoolParams pp;
  pp.server_count = 1;
  pp.false_ticker_count = 1;
  pp.false_ticker_offset_s = 0.35;
  Fixture f(0.0, pp);
  bool done = false;
  f.engine.query(f.pool.endpoint(0, nullptr, nullptr), QueryOptions{},
                 [&](core::Result<SntpSample> r) {
                   done = true;
                   ASSERT_TRUE(r.ok());
                   EXPECT_NEAR(r.value().offset.to_millis(), 350.0, 20.0);
                 });
  f.sim.run();
  EXPECT_TRUE(done);
}

/// Link that never delivers.
class BlackHole final : public net::Link {
 public:
  net::TransmitResult transmit(TimePoint, std::size_t) override {
    return {.delivered = false, .delay = Duration::zero()};
  }
};

TEST(QueryEngine, TimesOutOnDeadUplink) {
  Fixture f;
  BlackHole hole;
  bool done = false;
  QueryOptions opts;
  opts.timeout = Duration::seconds(2);
  f.engine.query(f.pool.endpoint(0, &hole, nullptr), opts,
                 [&](core::Result<SntpSample> r) {
                   done = true;
                   ASSERT_FALSE(r.ok());
                   EXPECT_EQ(r.error().code, core::Error::Code::kTimeout);
                 });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.engine.timeouts(), 1u);
  // Timeout fired at exactly +2 s.
  EXPECT_EQ(f.sim.now(), TimePoint::epoch() + Duration::seconds(2));
}

TEST(QueryEngine, TimesOutOnDeadDownlink) {
  Fixture f;
  BlackHole hole;
  bool done = false;
  f.engine.query(f.pool.endpoint(0, nullptr, &hole), QueryOptions{},
                 [&](core::Result<SntpSample> r) {
                   done = true;
                   EXPECT_FALSE(r.ok());
                 });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(QueryEngine, ExactlyOneCallbackPerQuery) {
  Fixture f;
  int callbacks = 0;
  for (int i = 0; i < 50; ++i) {
    f.engine.query(f.pool.endpoint(f.pool.pick_index(), nullptr, nullptr),
                   QueryOptions{}, [&](core::Result<SntpSample>) { ++callbacks; });
  }
  f.sim.run();
  EXPECT_EQ(callbacks, 50);
}

TEST(SntpClient, PollsAndRecordsSamples) {
  Fixture f;
  SntpClientPolicy policy;
  policy.poll_interval = Duration::seconds(5);
  SntpClient client(f.sim, f.clock, f.pool, nullptr, nullptr, policy);
  client.start();
  f.sim.run_until(TimePoint::epoch() + Duration::minutes(5));
  client.stop();
  EXPECT_GE(client.polls(), 59u);
  EXPECT_GE(client.samples().size(), 55u);  // a few losses allowed
  EXPECT_EQ(client.offsets_ms().size(), client.samples().size());
}

TEST(SntpClient, UpdateClockStepsWhenAboveThreshold) {
  Fixture f(/*client_offset_s=*/-0.5);
  SntpClientPolicy policy;
  policy.poll_interval = Duration::seconds(5);
  policy.update_clock = true;
  policy.update_threshold = Duration::milliseconds(100);
  SntpClient client(f.sim, f.clock, f.pool, nullptr, nullptr, policy);
  client.start();
  f.sim.run_until(TimePoint::epoch() + Duration::minutes(2));
  EXPECT_GE(client.clock_updates(), 1u);
  // SNTP stepped the clock toward true time.
  EXPECT_LT(std::abs(f.clock.offset_at(f.sim.now())), 0.05);
}

TEST(SntpClient, UpdateThresholdSuppressesSmallOffsets) {
  Fixture f(/*client_offset_s=*/-0.5);
  SntpClientPolicy policy;
  policy.poll_interval = Duration::seconds(5);
  policy.update_clock = true;
  policy.update_threshold = Duration::seconds(5);  // Android's 5000 ms
  SntpClient client(f.sim, f.clock, f.pool, nullptr, nullptr, policy);
  client.start();
  f.sim.run_until(TimePoint::epoch() + Duration::minutes(2));
  // 500 ms error stays: below the vendor threshold.
  EXPECT_EQ(client.clock_updates(), 0u);
  EXPECT_NEAR(f.clock.offset_at(f.sim.now()), -0.5, 0.01);
}

TEST(SntpClient, RetriesAfterFailure) {
  // All pool traffic through a dead last hop: every poll fails; with
  // retries configured, attempts = polls * (1 + retries).
  Fixture f;
  BlackHole hole;
  SntpClientPolicy policy;
  policy.poll_interval = Duration::seconds(30);
  policy.retries = 3;
  policy.retry_gap = Duration::seconds(1);
  QueryOptions opts;
  opts.timeout = Duration::seconds(2);
  SntpClient client(f.sim, f.clock, f.pool, &hole, &hole, policy, opts);
  client.start();
  f.sim.run_until(TimePoint::epoch() + Duration::seconds(29));
  // One poll, 4 attempts total, all failed; failure recorded once.
  EXPECT_EQ(client.polls(), 1u);
  EXPECT_EQ(client.failures(), 1u);
}

TEST(SntpClient, OnSampleObserverFires) {
  Fixture f;
  SntpClientPolicy policy;
  SntpClient client(f.sim, f.clock, f.pool, nullptr, nullptr, policy);
  int observed = 0;
  client.set_on_sample([&](const SntpSample&) { ++observed; });
  client.start();
  f.sim.run_until(TimePoint::epoch() + Duration::minutes(1));
  EXPECT_GT(observed, 5);
  EXPECT_EQ(static_cast<std::size_t>(observed), client.samples().size());
}

}  // namespace
}  // namespace mntp::ntp
