// Robustness and property tests across modules: fuzz-style parser
// hardening, brute-force cross-checks of the selection algorithm, event
// queue stress, and whole-experiment determinism sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"
#include "ntp/packet.h"
#include "ntp/selection.h"
#include "ptp/message.h"
#include "sim/event_queue.h"
#include "ntp/testbed.h"
#include "mntp/mntp_client.h"

namespace mntp {
namespace {

using core::Duration;
using core::Rng;
using core::TimePoint;

TEST(FuzzNtpParser, RandomBytesNeverCrash) {
  Rng rng(1000);
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform_int(0, 96)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto r = ntp::NtpPacket::parse(bytes);
    if (r.ok()) {
      // Whatever parsed must re-serialize to a parseable packet.
      const auto again = ntp::NtpPacket::parse(r.value().to_bytes());
      ASSERT_TRUE(again.ok());
    }
  }
}

TEST(FuzzNtpParser, BitFlipsOfValidPacketHandledCleanly) {
  Rng rng(1001);
  ntp::NtpPacket base = ntp::NtpPacket::make_ntp_request(
      core::NtpTimestamp::from_parts(1234, 5678), 6,
      core::NtpTimestamp::from_parts(1, 2));
  const auto wire = base.to_bytes();
  for (int i = 0; i < 5000; ++i) {
    auto mutated = wire;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    // Either parses (most field mutations are legal values) or errors;
    // never crashes, never loops.
    (void)ntp::NtpPacket::parse(mutated);
  }
}

TEST(FuzzPtpParser, RandomBytesNeverCrash) {
  Rng rng(1002);
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform_int(0, 90)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto r = ptp::PtpMessage::parse(bytes);
    if (r.ok()) {
      ASSERT_LT(r.value().timestamp.nanoseconds, 1'000'000'000u);
    }
  }
}

TEST(ServerHandlesFuzzedRequests, NeverCrashesAndNeverAnswersGarbage) {
  Rng rng(1003);
  ntp::NtpServer server("fuzz", ntp::NtpServerParams{}, rng.fork());
  std::size_t answered = 0;
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(48);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto reply = server.handle(
        bytes, TimePoint::epoch() + Duration::seconds(i + 1));
    if (reply.ok()) {
      ++answered;
      EXPECT_EQ(reply.value().packet.mode, ntp::Mode::kServer);
    }
  }
  // Only client-mode packets get answers (~1/8 of random mode bits, of
  // the ~1/2 with valid version bits).
  EXPECT_LT(answered, 2500u);
}

// Brute-force reference for the intersection algorithm on small inputs:
// find the largest subset of intervals with a common point, preferring
// fewer assumed falsetickers, and compare survivor *counts*.
std::size_t brute_force_max_clique(const std::vector<ntp::PeerEstimate>& peers) {
  std::size_t best = 0;
  // Candidate intersection points: all interval endpoints.
  std::vector<double> candidates;
  for (const auto& p : peers) {
    const double o = p.offset.to_seconds();
    const double r = std::max(p.root_distance().to_seconds(), 1e-9);
    candidates.push_back(o - r);
    candidates.push_back(o + r);
  }
  for (double x : candidates) {
    std::size_t covering = 0;
    for (const auto& p : peers) {
      const double o = p.offset.to_seconds();
      const double r = std::max(p.root_distance().to_seconds(), 1e-9);
      if (o - r <= x && x <= o + r) ++covering;
    }
    best = std::max(best, covering);
  }
  return best;
}

TEST(SelectionProperty, MatchesBruteForceCliqueSize) {
  Rng rng(1004);
  for (int trial = 0; trial < 500; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 7));
    std::vector<ntp::PeerEstimate> peers;
    for (std::size_t i = 0; i < n; ++i) {
      ntp::PeerEstimate e;
      e.offset = Duration::from_millis(rng.uniform(-100, 100));
      e.delay = Duration::from_millis(rng.uniform(1, 60));
      e.dispersion = Duration::from_millis(rng.uniform(0, 10));
      e.jitter_s = 1e-3;
      peers.push_back(e);
    }
    const auto chimers = ntp::select_truechimers(peers);
    const std::size_t clique = brute_force_max_clique(peers);
    if (clique * 2 > n) {
      // A majority clique exists: the algorithm must find a survivor set
      // that includes it (survivors are peers overlapping the
      // intersection, so count >= clique size).
      ASSERT_GE(chimers.size(), clique) << "trial " << trial;
    } else {
      ASSERT_TRUE(chimers.empty()) << "trial " << trial;
    }
  }
}

TEST(EventQueueStress, ManyInterleavedSchedulesAndCancels) {
  Rng rng(1005);
  sim::EventQueue q;
  std::vector<sim::EventHandle> handles;
  std::int64_t executed = 0;
  std::int64_t scheduled = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 50; ++i) {
      const auto when =
          TimePoint::epoch() + Duration::milliseconds(rng.uniform_int(0, 10000));
      handles.push_back(q.schedule(when, [&] { ++executed; }));
      ++scheduled;
    }
    // Cancel a random third.
    for (int i = 0; i < 16 && !handles.empty(); ++i) {
      const auto at = rng.index(handles.size());
      handles[at].cancel();
      handles.erase(handles.begin() +
                    static_cast<std::ptrdiff_t>(at));
    }
    // Drain a few.
    for (int i = 0; i < 30 && !q.empty(); ++i) (void)q.run_next();
  }
  while (!q.empty()) (void)q.run_next();
  EXPECT_GT(executed, 0);
  EXPECT_LE(executed, scheduled);
}

TEST(EventQueueStress, TimeOrderPreservedUnderLoad) {
  Rng rng(1006);
  sim::EventQueue q;
  TimePoint last = TimePoint::epoch();
  bool ordered = true;
  for (int i = 0; i < 5000; ++i) {
    const auto when =
        TimePoint::epoch() + Duration::microseconds(rng.uniform_int(0, 1000000));
    q.schedule(when, [] {});
  }
  while (!q.empty()) {
    const TimePoint t = q.run_next();
    ordered &= t >= last;
    last = t;
  }
  EXPECT_TRUE(ordered);
}

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, FullExperimentReplaysBitIdentically) {
  auto run = [&] {
    ntp::TestbedConfig config;
    config.seed = GetParam();
    config.wireless = true;
    ntp::Testbed bed(config);
    protocol::MntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                                bed.channel(), protocol::head_to_head_params(),
                                bed.fork_rng());
    bed.start();
    client.start();
    bed.sim().run_until(TimePoint::epoch() + Duration::minutes(10));
    auto offsets = client.engine().accepted_offsets_ms();
    offsets.push_back(bed.true_clock_offset_ms());
    offsets.push_back(static_cast<double>(bed.sim().events_executed()));
    return offsets;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1, 7, 99, 12345, 0xDEADBEEF));

}  // namespace
}  // namespace mntp
