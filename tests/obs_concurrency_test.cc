// Thread-safety of the obs layer under concurrent writers: exact counter
// totals, no lost histogram samples, serialized event emission. These are
// the tests the TSan preset (README: -DMNTP_TSAN=ON) is aimed at.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace_event.h"

namespace mntp::obs {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kPerThread = 20000;

TEST(ObsConcurrency, CounterHammerExactTotal) {
  MetricsRegistry reg;
  Counter* c = reg.counter("hammer.counter");
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (std::size_t i = 0; i < kPerThread; ++i) c->inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(ObsConcurrency, GaugeAddExactTotal) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("hammer.gauge");
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([g] {
      for (std::size_t i = 0; i < kPerThread; ++i) g->add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g->value(), static_cast<double>(kThreads * kPerThread));
}

TEST(ObsConcurrency, HistogramHammerExactCountAndSum) {
  MetricsRegistry reg;
  Histogram* h =
      reg.histogram("hammer.hist", HistogramOptions::exponential(1.0, 2.0, 8));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        h->record(static_cast<double>(t % 4) + 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  // 8 threads record values 1,2,3,4 twice each: sum = 2*(1+2+3+4)*per.
  EXPECT_DOUBLE_EQ(h->sum(), 2.0 * 10.0 * static_cast<double>(kPerThread));
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < h->bucket_count(); ++i) {
    bucketed += h->bucket_value(i);
  }
  EXPECT_EQ(bucketed, h->count());
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 4.0);
}

TEST(ObsConcurrency, RegistryFindOrCreateFromManyThreads) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Everyone resolves the same series; the registry must hand all of
      // them one Counter and lose no increments during creation races.
      for (int i = 0; i < 500; ++i) reg.counter("shared.series")->inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared.series")->value(), kThreads * 500u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsConcurrency, EmitFromManyThreadsLosesNoEvents) {
  Telemetry tel;
  RingBufferSink ring(1 << 20);
  tel.add_sink(&ring);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&tel] {
      for (std::size_t i = 0; i < 2000; ++i) {
        tel.event(core::TimePoint::epoch(), "test", "evt",
                  {{"i", static_cast<std::int64_t>(i)}});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.total_events(), 4u * 2000u);
}

TEST(ObsConcurrency, ParallelForWorkersShareOneCounter) {
  // The exact shape the parallel tuner search uses: pool workers bump one
  // counter while writing disjoint result slots.
  Telemetry tel;
  ScopedTelemetry scope(tel);
  Counter* scored = Telemetry::global().metrics().counter("t.scored");
  core::ThreadPool pool(4);
  std::vector<double> results(512);
  pool.parallel_for(0, results.size(), [&](std::size_t i) {
    results[i] = static_cast<double>(i);
    scored->inc();
  });
  EXPECT_EQ(scored->value(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], static_cast<double>(i));
  }
}

TEST(ObsConcurrency, DisabledRegistryIgnoresConcurrentWrites) {
  MetricsRegistry reg;
  Counter* c = reg.counter("off.counter");
  reg.set_enabled(false);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < 1000; ++i) c->inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), 0u);
}

}  // namespace
}  // namespace mntp::obs
