// Tests for the future-work extensions: the max_deferral fallback for
// perpetually unstable channels and the self-tuning controller.
#include <gtest/gtest.h>

#include "mntp/mntp_client.h"
#include "mntp/self_tuning.h"
#include "ntp/testbed.h"

namespace mntp::protocol {
namespace {

using core::Duration;
using core::TimePoint;

ntp::TestbedConfig hostile_channel_config(std::uint64_t seed) {
  ntp::TestbedConfig config;
  config.seed = seed;
  config.wireless = true;
  config.ntp_correction = false;
  // A channel no hint reading will ever call favorable — the noise floor
  // sits above the -70 dBm threshold and the SNR margin never reaches
  // 20 dB — yet packets still (mostly) get through after MAC retries.
  config.channel.base_noise = core::Dbm{-68.0};
  return config;
}

TEST(MaxDeferral, PaperBehaviourStarvesOnHostileChannel) {
  ntp::Testbed bed(hostile_channel_config(400));
  MntpParams params = head_to_head_params();  // max_deferral = 0 (off)
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    params, bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(1));
  // Shadowing + measurement noise can sneak the occasional reading past
  // the thresholds, but the client is essentially starved.
  EXPECT_LT(client.requests_sent(), 10u);
  EXPECT_EQ(client.forced_emissions(), 0u);
  EXPECT_GT(client.engine().deferrals(), 1000u);
}

TEST(MaxDeferral, FallbackKeepsSamplingOnHostileChannel) {
  ntp::Testbed bed(hostile_channel_config(401));
  MntpParams params = head_to_head_params();
  params.max_deferral = Duration::minutes(2);
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    params, bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(1));
  // Roughly one forced emission per max_deferral window.
  EXPECT_GE(client.forced_emissions(), 20u);
  EXPECT_GT(client.requests_sent(), 20u);
  EXPECT_FALSE(client.engine().accepted_offsets_ms().empty());
}

TEST(MaxDeferral, NotTriggeredOnHealthyChannel) {
  ntp::TestbedConfig config;
  config.seed = 402;
  config.wireless = true;
  ntp::Testbed bed(config);
  MntpParams params = head_to_head_params();
  params.max_deferral = Duration::minutes(5);
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    params, bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(1));
  // The gate opens often enough that the fallback stays quiet.
  EXPECT_LT(client.forced_emissions(), 3u);
}

TEST(SelfTuner, BacksOffWhenStable) {
  ntp::TestbedConfig config;
  config.seed = 403;
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);
  MntpParams params = head_to_head_params();
  params.regular_wait_time = Duration::seconds(30);
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    params, bed.fork_rng());
  SelfTunerParams tuner_params;
  tuner_params.adapt_interval = Duration::minutes(10);
  tuner_params.min_regular_wait = Duration::seconds(15);
  tuner_params.max_regular_wait = Duration::minutes(10);
  bed.start();
  client.start();
  SelfTuner tuner(bed.sim(), client, tuner_params);
  tuner.start();
  bed.sim().run_until(TimePoint::epoch() + Duration::hours(4));
  // On a well-behaved (NTP-corrected) clock the rejection rate is low:
  // the tuner should have lengthened the wait to save requests.
  EXPECT_GT(tuner.backoffs(), 0u);
  EXPECT_GT(tuner.current_wait(), Duration::seconds(30));
}

TEST(SelfTuner, WaitStaysWithinConfiguredBand) {
  ntp::TestbedConfig config;
  config.seed = 404;
  config.wireless = true;
  ntp::Testbed bed(config);
  MntpParams params = head_to_head_params();
  MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                    params, bed.fork_rng());
  SelfTunerParams tuner_params;
  tuner_params.adapt_interval = Duration::minutes(5);
  tuner_params.min_regular_wait = Duration::seconds(10);
  tuner_params.max_regular_wait = Duration::minutes(2);
  bed.start();
  client.start();
  SelfTuner tuner(bed.sim(), client, tuner_params);
  tuner.start();
  for (int m = 10; m <= 240; m += 10) {
    bed.sim().run_until(TimePoint::epoch() + Duration::minutes(m));
    ASSERT_GE(tuner.current_wait(), tuner_params.min_regular_wait);
    ASSERT_LE(tuner.current_wait(), tuner_params.max_regular_wait);
  }
}

TEST(SelfTuner, FewerRequestsThanFixedFastCadence) {
  auto run_requests = [](bool adapt) {
    ntp::TestbedConfig config;
    config.seed = 405;
    config.wireless = true;
    config.ntp_correction = true;
    ntp::Testbed bed(config);
    MntpParams params = head_to_head_params();  // 5 s cadence
    MntpClient client(bed.sim(), bed.target_clock(), bed.pool(), bed.channel(),
                      params, bed.fork_rng());
    bed.start();
    client.start();
    SelfTuner tuner(bed.sim(), client, SelfTunerParams{});
    if (adapt) tuner.start();
    bed.sim().run_until(TimePoint::epoch() + Duration::hours(4));
    return client.requests_sent();
  };
  const auto fixed = run_requests(false);
  const auto adaptive = run_requests(true);
  EXPECT_LT(adaptive, fixed / 2);
}

}  // namespace
}  // namespace mntp::protocol
