#include "core/json.h"

#include <gtest/gtest.h>

namespace mntp::core {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").value().is_null());
  EXPECT_TRUE(Json::parse("true").value().as_bool());
  EXPECT_FALSE(Json::parse("false").value().as_bool());
  EXPECT_EQ(Json::parse("42").value().as_int(), 42);
  EXPECT_EQ(Json::parse("-17").value().as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").value().as_double(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-2e3").value().as_double(), -2000.0);
  EXPECT_EQ(Json::parse("\"hi\"").value().as_string(), "hi");
}

TEST(Json, IntegersStayExact) {
  const Json j = Json::parse("9007199254740993").value();  // 2^53 + 1
  ASSERT_TRUE(j.is_int());
  EXPECT_EQ(j.as_int(), 9007199254740993LL);
}

TEST(Json, NumberTypePromotion) {
  // as_int/as_double convert across the int/double divide.
  EXPECT_EQ(Json::parse("2.0").value().as_int(), 2);
  EXPECT_DOUBLE_EQ(Json::parse("7").value().as_double(), 7.0);
}

TEST(Json, StringEscapes) {
  const Json j = Json::parse(R"("a\"b\\c\nd\tA")").value();
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd\tA");
}

TEST(Json, NestedStructure) {
  const auto r = Json::parse(
      R"({"meta":{"n":3,"ok":true},"xs":[1,2.5,"three",null]})");
  ASSERT_TRUE(r.ok());
  const Json& j = r.value();
  EXPECT_TRUE(j.is_object());
  EXPECT_EQ(j["meta"]["n"].as_int(), 3);
  EXPECT_TRUE(j["meta"]["ok"].as_bool());
  ASSERT_EQ(j["xs"].size(), 4u);
  EXPECT_EQ(j["xs"].at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(j["xs"].at(1).as_double(), 2.5);
  EXPECT_EQ(j["xs"].at(2).as_string(), "three");
  EXPECT_TRUE(j["xs"].at(3).is_null());
}

TEST(Json, MissingLookupsChainToNull) {
  const Json j = Json::parse(R"({"a":{"b":1}})").value();
  EXPECT_TRUE(j["nope"].is_null());
  EXPECT_TRUE(j["nope"]["deeper"].is_null());
  EXPECT_EQ(j["nope"]["deeper"].as_int(), 0);
  EXPECT_FALSE(j.has("nope"));
  EXPECT_TRUE(j.has("a"));
  EXPECT_TRUE(j["a"].at(5).is_null());
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::parse("[]").value().size(), 0u);
  EXPECT_EQ(Json::parse("{}").value().size(), 0u);
  EXPECT_EQ(Json::parse("[ ]").value().size(), 0u);
  EXPECT_EQ(Json::parse("{ }").value().size(), 0u);
}

TEST(Json, WhitespaceTolerated) {
  const auto r = Json::parse("  { \"a\" : [ 1 , 2 ] }\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()["a"].size(), 2u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
  EXPECT_FALSE(Json::parse("tru").ok());
  EXPECT_FALSE(Json::parse("1 2").ok());
  EXPECT_FALSE(Json::parse("{'a':1}").ok());
  EXPECT_FALSE(Json::parse("1.2.3").ok());
}

TEST(Json, ErrorsCarryOffset) {
  const auto r = Json::parse("[1, oops]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("offset"), std::string::npos);
}

TEST(Json, CopiesShareStorageCheaply) {
  const Json a = Json::parse(R"({"k":[1,2,3]})").value();
  const Json b = a;  // shallow copy
  EXPECT_EQ(b["k"].size(), 3u);
  EXPECT_EQ(&a["k"].as_array(), &b["k"].as_array());
}

}  // namespace
}  // namespace mntp::core
