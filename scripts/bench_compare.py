#!/usr/bin/env python3
"""Compare a perf-suite run against the committed baseline.

  bench_compare.py BENCH_baseline.json BENCH_results.json
      [--tolerance R] [--tolerance WORKLOAD=R] [--abs-floor-us N]

Per workload the candidate's median must satisfy

    candidate_median <= baseline_median * (1 + tolerance)
                        + max(abs_floor_us, 4 * baseline_mad)

The relative tolerance (default 0.5 — CI machines are noisy; this gate
exists to catch the 2x accident, not the 5% drift) can be overridden
globally or per workload with repeated `--tolerance name=R` flags. The
MAD term widens the gate for workloads whose baseline itself wobbles;
the absolute floor (default 200 us) keeps microsecond-scale workloads
from failing on scheduler jitter alone.

Exit status: 0 when every baseline workload passes, 1 on any regression
or when a baseline workload is missing from the candidate, 2 on bad
inputs. Environment differences (compiler, build type) are printed as
warnings, not failures — a baseline from another toolchain still bounds
an order-of-magnitude regression.

--budget A:B:PCT adds a within-candidate budget check: workload A's
median must not exceed workload B's median by more than PCT percent
(repeatable). This is how CI pins the telemetry self-overhead claim —
`--budget telemetry_overhead_off:engine_round:1` asserts the disabled
telemetry path costs at most 1% over the bare engine round. Budget
failures count as regressions (exit 1) like any other.

--write-delta PATH additionally writes the candidate-vs-baseline record
in the committed BENCH_pr*.json format (schema_version 1, kind
mntp_perf_delta): per workload the after/before medians and MADs plus
the speedup ratio, with `"before_median_us": null` and a note for
workloads new in the candidate. The delta file is written even when the
gate fails — a regression record is exactly what the PR discussion
needs.

--profile BASE_PROFILE CAND_PROFILE supplies a Chrome span-profile pair
(--profile-out artifacts) for the same baseline/candidate runs; the
spans are aggregated by name (total/self microseconds summed over
complete events, the same aggregation as `mntp-inspect diff`) and the
top movers ranked by |delta self| are embedded in the --write-delta
record under "profile_span_movers" — so a committed BENCH_pr*.json
carries the per-span attribution of the medians it records, not just
the medians.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot load {path}: {e}")
    if doc.get("kind") != "mntp_perf_suite" or doc.get("schema_version") != 1:
        raise SystemExit(f"bench_compare: {path} is not a perf-suite result "
                         "(kind mntp_perf_suite, schema_version 1)")
    return doc


def parse_tolerances(values, default_tolerance):
    default = default_tolerance
    per_workload = {}
    for v in values:
        if "=" in v:
            name, _, r = v.partition("=")
            try:
                per_workload[name] = float(r)
            except ValueError:
                raise SystemExit(f"bench_compare: bad tolerance '{v}'")
        else:
            try:
                default = float(v)
            except ValueError:
                raise SystemExit(f"bench_compare: bad tolerance '{v}'")
    return default, per_workload


def aggregate_profile_spans(path):
    """Span name -> {count, total_us, self_us} over ph:X complete events
    (the same per-name aggregation src/obs/diff.cc uses)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot load profile {path}: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise SystemExit(f"bench_compare: {path} is not a Chrome span "
                         "profile (no traceEvents array)")
    spans = {}
    for e in events:
        if not isinstance(e, dict) or e.get("ph") != "X":
            continue
        agg = spans.setdefault(e.get("name", ""),
                               {"count": 0, "total_us": 0.0, "self_us": 0.0})
        agg["count"] += 1
        agg["total_us"] += float(e.get("dur", 0.0))
        agg["self_us"] += float(e.get("args", {}).get("self_us", 0.0))
    return spans


def profile_span_movers(base_path, cand_path, top=8):
    """Ranked per-span attribution of the candidate-vs-baseline change:
    top spans by |delta self_us| (self time is additive, so these deltas
    ARE the decomposition of the end-to-end wall-time change)."""
    base = aggregate_profile_spans(base_path)
    cand = aggregate_profile_spans(cand_path)
    movers = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name)
        c = cand.get(name)
        movers.append({
            "span": name,
            "before_total_us": round(b["total_us"], 3) if b else None,
            "after_total_us": round(c["total_us"], 3) if c else None,
            "before_self_us": round(b["self_us"], 3) if b else None,
            "after_self_us": round(c["self_us"], 3) if c else None,
            "delta_self_us": round((c["self_us"] if c else 0.0) -
                                   (b["self_us"] if b else 0.0), 3),
        })
    movers.sort(key=lambda m: (-abs(m["delta_self_us"]), m["span"]))
    return movers[:top]


def write_delta(path, description, baseline, candidate, base_by_name,
                cand_by_name, span_movers=None):
    """Emit the BENCH_pr*.json before/after record for this comparison."""
    if not description:
        description = (f"perf_suite medians: candidate vs baseline "
                       f"(reps {candidate.get('reps')}, warmup "
                       f"{candidate.get('warmup')}), generated by "
                       f"bench_compare.py --write-delta")
    workloads = []
    # Candidate order: the delta documents what this PR's suite measures.
    for name, cand in cand_by_name.items():
        entry = {
            "name": name,
            "after_median_us": cand["median_us"],
            "after_mad_us": cand.get("mad_us", 0.0),
        }
        base = base_by_name.get(name)
        if base is None:
            entry["before_median_us"] = None
            entry["note"] = "new workload in this PR"
        else:
            entry["before_median_us"] = base["median_us"]
            entry["before_mad_us"] = base.get("mad_us", 0.0)
            entry["speedup"] = (
                round(base["median_us"] / cand["median_us"], 3)
                if cand["median_us"] > 0 else None)
        workloads.append(entry)
    for name, base in base_by_name.items():
        if name in cand_by_name:
            continue
        workloads.append({
            "name": name,
            "after_median_us": None,
            "before_median_us": base["median_us"],
            "before_mad_us": base.get("mad_us", 0.0),
            "note": "workload removed in this PR",
        })
    doc = {
        "schema_version": 1,
        "kind": "mntp_perf_delta",
        "description": description,
        "environment": candidate.get("environment", {}),
        "workloads": workloads,
    }
    if span_movers is not None:
        doc["profile_span_movers"] = span_movers
    try:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
    except OSError as e:
        raise SystemExit(f"bench_compare: cannot write {path}: {e}")
    print(f"bench_compare: delta record written to {path} "
          f"({len(workloads)} workloads)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="R|WORKLOAD=R",
                        help="relative tolerance; bare number sets the "
                             "default, name=R overrides one workload "
                             "(repeatable)")
    parser.add_argument("--abs-floor-us", type=float, default=200.0,
                        help="minimum absolute regression allowance in "
                             "microseconds (default 200)")
    parser.add_argument("--budget", action="append", default=[],
                        metavar="A:B:PCT",
                        help="within-candidate budget: workload A's median "
                             "must be <= workload B's median * (1+PCT/100) "
                             "(repeatable)")
    parser.add_argument("--write-delta", metavar="PATH",
                        help="write the candidate-vs-baseline delta record "
                             "(BENCH_pr*.json format) to PATH")
    parser.add_argument("--profile", nargs=2,
                        metavar=("BASE_PROFILE", "CAND_PROFILE"),
                        help="Chrome span-profile pair for the same runs; "
                             "embeds the top per-span self-time movers in "
                             "the --write-delta record")
    parser.add_argument("--delta-description", default="",
                        help="free-form 'description' field for "
                             "--write-delta")
    args = parser.parse_args()
    default_tol, overrides = parse_tolerances(args.tolerance, 0.5)
    if default_tol < 0 or any(t < 0 for t in overrides.values()):
        raise SystemExit("bench_compare: tolerances must be >= 0")

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    for key in ("compiler", "build_type"):
        b = baseline.get("environment", {}).get(key)
        c = candidate.get("environment", {}).get(key)
        if b != c:
            print(f"WARNING: environment.{key} differs: baseline {b!r} vs "
                  f"candidate {c!r}")

    base_by_name = {w["name"]: w for w in baseline.get("workloads", [])}
    cand_by_name = {w["name"]: w for w in candidate.get("workloads", [])}
    failures = 0

    for name, base in base_by_name.items():
        tol = overrides.get(name, default_tol)
        cand = cand_by_name.get(name)
        if cand is None:
            print(f"FAIL {name}: missing from candidate")
            failures += 1
            continue
        bm, cm = base["median_us"], cand["median_us"]
        allowance = bm * tol + max(args.abs_floor_us,
                                   4.0 * base.get("mad_us", 0.0))
        limit = bm + allowance
        ratio = cm / bm if bm > 0 else float("inf")
        status = "PASS" if cm <= limit else "FAIL"
        if status == "FAIL":
            failures += 1
        print(f"{status} {name}: median {cm:.1f} us vs baseline {bm:.1f} us "
              f"({ratio:.2f}x, limit {limit:.1f} us, tol {tol:.0%})")

    for name in cand_by_name:
        if name not in base_by_name:
            print(f"NOTE {name}: new workload, no baseline (add it with "
                  f"perf_suite --out {args.baseline})")

    # Within-candidate budgets: A's median vs B's median, same file, so
    # machine speed cancels out (unlike the cross-file gate above).
    for spec in args.budget:
        parts = spec.split(":")
        if len(parts) != 3:
            raise SystemExit(f"bench_compare: bad budget '{spec}' "
                             "(want A:B:PCT)")
        a_name, b_name, pct_s = parts
        try:
            pct = float(pct_s)
        except ValueError:
            raise SystemExit(f"bench_compare: bad budget percent in '{spec}'")
        a = cand_by_name.get(a_name)
        b = cand_by_name.get(b_name)
        if a is None or b is None:
            missing = a_name if a is None else b_name
            print(f"FAIL budget {spec}: workload '{missing}' missing from "
                  "candidate")
            failures += 1
            continue
        limit = b["median_us"] * (1.0 + pct / 100.0)
        overhead = (a["median_us"] / b["median_us"] - 1.0) * 100.0 \
            if b["median_us"] > 0 else float("inf")
        status = "PASS" if a["median_us"] <= limit else "FAIL"
        if status == "FAIL":
            failures += 1
        print(f"{status} budget {a_name}: median {a['median_us']:.1f} us vs "
              f"{b_name} {b['median_us']:.1f} us ({overhead:+.2f}%, "
              f"budget {pct:g}%)")

    span_movers = None
    if args.profile:
        span_movers = profile_span_movers(args.profile[0], args.profile[1])
        for m in span_movers:
            print(f"SPAN {m['span']}: self "
                  f"{m['before_self_us'] if m['before_self_us'] is not None else '-'} -> "
                  f"{m['after_self_us'] if m['after_self_us'] is not None else '-'} us "
                  f"(delta {m['delta_self_us']:+.1f})")

    if args.write_delta:
        write_delta(args.write_delta, args.delta_description, baseline,
                    candidate, base_by_name, cand_by_name, span_movers)

    if failures:
        print(f"bench_compare: {failures} regression(s) against "
              f"{args.baseline}")
        return 1
    print(f"bench_compare: all {len(base_by_name)} workloads within "
          f"tolerance of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
