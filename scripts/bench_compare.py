#!/usr/bin/env python3
"""Compare a perf-suite run against the committed baseline.

  bench_compare.py BENCH_baseline.json BENCH_results.json
      [--tolerance R] [--tolerance WORKLOAD=R] [--abs-floor-us N]

Per workload the candidate's median must satisfy

    candidate_median <= baseline_median * (1 + tolerance)
                        + max(abs_floor_us, 4 * baseline_mad)

The relative tolerance (default 0.5 — CI machines are noisy; this gate
exists to catch the 2x accident, not the 5% drift) can be overridden
globally or per workload with repeated `--tolerance name=R` flags. The
MAD term widens the gate for workloads whose baseline itself wobbles;
the absolute floor (default 200 us) keeps microsecond-scale workloads
from failing on scheduler jitter alone.

Exit status: 0 when every baseline workload passes, 1 on any regression
or when a baseline workload is missing from the candidate, 2 on bad
inputs. Environment differences (compiler, build type) are printed as
warnings, not failures — a baseline from another toolchain still bounds
an order-of-magnitude regression.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot load {path}: {e}")
    if doc.get("kind") != "mntp_perf_suite" or doc.get("schema_version") != 1:
        raise SystemExit(f"bench_compare: {path} is not a perf-suite result "
                         "(kind mntp_perf_suite, schema_version 1)")
    return doc


def parse_tolerances(values, default_tolerance):
    default = default_tolerance
    per_workload = {}
    for v in values:
        if "=" in v:
            name, _, r = v.partition("=")
            try:
                per_workload[name] = float(r)
            except ValueError:
                raise SystemExit(f"bench_compare: bad tolerance '{v}'")
        else:
            try:
                default = float(v)
            except ValueError:
                raise SystemExit(f"bench_compare: bad tolerance '{v}'")
    return default, per_workload


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="R|WORKLOAD=R",
                        help="relative tolerance; bare number sets the "
                             "default, name=R overrides one workload "
                             "(repeatable)")
    parser.add_argument("--abs-floor-us", type=float, default=200.0,
                        help="minimum absolute regression allowance in "
                             "microseconds (default 200)")
    args = parser.parse_args()
    default_tol, overrides = parse_tolerances(args.tolerance, 0.5)
    if default_tol < 0 or any(t < 0 for t in overrides.values()):
        raise SystemExit("bench_compare: tolerances must be >= 0")

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    for key in ("compiler", "build_type"):
        b = baseline.get("environment", {}).get(key)
        c = candidate.get("environment", {}).get(key)
        if b != c:
            print(f"WARNING: environment.{key} differs: baseline {b!r} vs "
                  f"candidate {c!r}")

    base_by_name = {w["name"]: w for w in baseline.get("workloads", [])}
    cand_by_name = {w["name"]: w for w in candidate.get("workloads", [])}
    failures = 0

    for name, base in base_by_name.items():
        tol = overrides.get(name, default_tol)
        cand = cand_by_name.get(name)
        if cand is None:
            print(f"FAIL {name}: missing from candidate")
            failures += 1
            continue
        bm, cm = base["median_us"], cand["median_us"]
        allowance = bm * tol + max(args.abs_floor_us,
                                   4.0 * base.get("mad_us", 0.0))
        limit = bm + allowance
        ratio = cm / bm if bm > 0 else float("inf")
        status = "PASS" if cm <= limit else "FAIL"
        if status == "FAIL":
            failures += 1
        print(f"{status} {name}: median {cm:.1f} us vs baseline {bm:.1f} us "
              f"({ratio:.2f}x, limit {limit:.1f} us, tol {tol:.0%})")

    for name in cand_by_name:
        if name not in base_by_name:
            print(f"NOTE {name}: new workload, no baseline (add it with "
                  f"perf_suite --out {args.baseline})")

    if failures:
        print(f"bench_compare: {failures} regression(s) against "
              f"{args.baseline}")
        return 1
    print(f"bench_compare: all {len(base_by_name)} workloads within "
          f"tolerance of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
