#!/usr/bin/env python3
"""Validate a telemetry run report (JSONL, schema v1).

The schema is defined in src/obs/report.h and DESIGN.md "Observability".
This checker enforces, line by line:

  * line 1 is a `meta` object with schema_version 1 and run/sim_end_ns/
    metric_count/event_count;
  * every following line is a `metric` or an `event` object with the
    fields its kind requires;
  * metric lines precede event lines, metric names are sorted, and the
    meta counts match the actual body;
  * histogram buckets have ascending finite bounds with a final "inf"
    bucket whose counts sum to the histogram count, and p50<=p90<=p99;
  * event t_ns values are non-decreasing (sim-time order).

Usage:
  check_telemetry_schema.py report.jsonl [--require-prefixes a.,b.]
  check_telemetry_schema.py --generate BENCH_BINARY --out report.jsonl \
      [--require-prefixes a.,b.]

With --generate the script runs `BENCH_BINARY --telemetry-out OUT` first
(the binary's own exit code is ignored: shape checks may evolve
independently of the telemetry schema) and then validates OUT.
--require-prefixes additionally demands at least one metric per listed
name prefix, which is how the CTest wiring asserts that every layer of
the stack (sim., net., ntp., mntp.) actually reported.
"""

import argparse
import json
import subprocess
import sys


def fail(lineno, msg):
    raise SystemExit(f"SCHEMA ERROR line {lineno}: {msg}")


def check_meta(obj, lineno):
    for key in ("schema_version", "run", "sim_end_ns", "metric_count",
                "event_count"):
        if key not in obj:
            fail(lineno, f"meta missing '{key}'")
    if obj["schema_version"] != 1:
        fail(lineno, f"unsupported schema_version {obj['schema_version']}")
    if not isinstance(obj["run"], str) or not obj["run"]:
        fail(lineno, "meta 'run' must be a non-empty string")
    for key in ("sim_end_ns", "metric_count", "event_count"):
        if not isinstance(obj[key], int) or obj[key] < 0:
            fail(lineno, f"meta '{key}' must be a non-negative integer")


def check_histogram(obj, lineno):
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99", "buckets"):
        if key not in obj:
            fail(lineno, f"histogram missing '{key}'")
    if not isinstance(obj["count"], int) or obj["count"] < 0:
        fail(lineno, "histogram 'count' must be a non-negative integer")
    buckets = obj["buckets"]
    if not isinstance(buckets, list) or not buckets:
        fail(lineno, "histogram 'buckets' must be a non-empty array")
    prev_le = None
    total = 0
    for i, b in enumerate(buckets):
        if set(b) != {"le", "count"}:
            fail(lineno, f"bucket {i} must have exactly 'le' and 'count'")
        le, n = b["le"], b["count"]
        if not isinstance(n, int) or n < 0:
            fail(lineno, f"bucket {i} count must be a non-negative integer")
        total += n
        if i == len(buckets) - 1:
            if le != "inf":
                fail(lineno, "final bucket 'le' must be \"inf\"")
        else:
            if not isinstance(le, (int, float)) or isinstance(le, bool):
                fail(lineno, f"bucket {i} 'le' must be a number")
            if prev_le is not None and le <= prev_le:
                fail(lineno, f"bucket bounds must ascend ({le} after {prev_le})")
            prev_le = le
    if total != obj["count"]:
        fail(lineno, f"bucket counts sum to {total}, histogram count is "
                     f"{obj['count']}")
    if obj["count"] > 0:
        if obj["min"] > obj["max"]:
            fail(lineno, "histogram min > max")
        if not obj["p50"] <= obj["p90"] <= obj["p99"]:
            fail(lineno, "histogram quantiles must satisfy p50<=p90<=p99")


def check_metric(obj, lineno):
    for key in ("kind", "name", "labels"):
        if key not in obj:
            fail(lineno, f"metric missing '{key}'")
    if obj["kind"] not in ("counter", "gauge", "histogram"):
        fail(lineno, f"unknown metric kind '{obj['kind']}'")
    if not isinstance(obj["name"], str) or not obj["name"]:
        fail(lineno, "metric 'name' must be a non-empty string")
    labels = obj["labels"]
    if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in labels.items()):
        fail(lineno, "metric 'labels' must be a string-to-string object")
    if obj["kind"] == "histogram":
        check_histogram(obj, lineno)
    else:
        if "value" not in obj or isinstance(obj["value"], bool) or \
                not isinstance(obj["value"], (int, float)):
            fail(lineno, f"{obj['kind']} needs a numeric 'value'")
        if obj["kind"] == "counter" and obj["value"] < 0:
            fail(lineno, "counter value must be non-negative")


def check_event(obj, lineno):
    for key in ("t_ns", "category", "name", "fields"):
        if key not in obj:
            fail(lineno, f"event missing '{key}'")
    if not isinstance(obj["t_ns"], int):
        fail(lineno, "event 't_ns' must be an integer")
    for key in ("category", "name"):
        if not isinstance(obj[key], str) or not obj[key]:
            fail(lineno, f"event '{key}' must be a non-empty string")
    if not isinstance(obj["fields"], dict):
        fail(lineno, "event 'fields' must be an object")


def validate(path, require_prefixes):
    metric_names = []
    events_seen = 0
    last_t_ns = None
    meta = None
    in_events = False
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                fail(lineno, "blank line")
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as e:
                fail(lineno, f"invalid JSON: {e}")
            kind = obj.get("type")
            if lineno == 1:
                if kind != "meta":
                    fail(lineno, "first line must be the meta object")
                check_meta(obj, lineno)
                meta = obj
                continue
            if kind == "metric":
                if in_events:
                    fail(lineno, "metric line after the first event line")
                check_metric(obj, lineno)
                metric_names.append(obj["name"])
            elif kind == "event":
                in_events = True
                check_event(obj, lineno)
                if last_t_ns is not None and obj["t_ns"] < last_t_ns:
                    fail(lineno, f"event t_ns {obj['t_ns']} out of order "
                                 f"(previous {last_t_ns})")
                last_t_ns = obj["t_ns"]
                events_seen += 1
            elif kind == "meta":
                fail(lineno, "duplicate meta line")
            else:
                fail(lineno, f"unknown line type '{kind}'")

    if meta is None:
        raise SystemExit("SCHEMA ERROR: empty report")
    if meta["metric_count"] != len(metric_names):
        raise SystemExit(
            f"SCHEMA ERROR: meta metric_count {meta['metric_count']} != "
            f"{len(metric_names)} metric lines")
    if meta["event_count"] != events_seen:
        raise SystemExit(
            f"SCHEMA ERROR: meta event_count {meta['event_count']} != "
            f"{events_seen} event lines")
    if metric_names != sorted(metric_names):
        raise SystemExit("SCHEMA ERROR: metric lines not sorted by name")

    for prefix in require_prefixes:
        if not any(n.startswith(prefix) for n in metric_names):
            raise SystemExit(
                f"SCHEMA ERROR: no metric with required prefix '{prefix}' "
                f"(got {sorted(set(metric_names))})")

    print(f"OK: {path} — {len(metric_names)} metrics, {events_seen} events, "
          f"run '{meta['run']}'")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", help="JSONL report to validate")
    parser.add_argument("--generate", metavar="BINARY",
                        help="bench binary to run with --telemetry-out first")
    parser.add_argument("--out", help="report path for --generate")
    parser.add_argument("--require-prefixes", default="",
                        help="comma-separated metric-name prefixes that must "
                             "each match at least one metric")
    args = parser.parse_args()

    if args.generate:
        if not args.out:
            parser.error("--generate requires --out")
        path = args.out
        # The bench's own PASS/FAIL shape checks are not under test here;
        # only the telemetry output is.
        subprocess.run([args.generate, "--telemetry-out", path],
                       stdout=subprocess.DEVNULL, check=False)
    elif args.report:
        path = args.report
    else:
        parser.error("need a report path or --generate")

    prefixes = [p for p in args.require_prefixes.split(",") if p]
    validate(path, prefixes)


if __name__ == "__main__":
    main()
