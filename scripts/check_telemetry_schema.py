#!/usr/bin/env python3
"""Validate MNTP observability artifacts.

Eight artifact kinds, detected from content (or forced with --kind):

  * `report` — JSONL telemetry run report (schema v1, src/obs/report.h):
    line 1 is a `meta` object with schema_version 1 and run/sim_end_ns/
    metric_count/event_count; every following line is a `metric` or an
    `event` object with the fields its kind requires; metric lines
    precede event lines, metric names are sorted, and the meta counts
    match the actual body; histogram buckets have ascending finite
    bounds with a final "inf" bucket whose counts sum to the histogram
    count, and p50<=p90<=p99; event t_ns values are non-decreasing.
  * `profile` — Chrome trace-event JSON written by --profile-out
    (src/obs/profiler.h): a single object with a traceEvents array of
    "ph":"M" metadata and "ph":"X" complete events carrying numeric
    ts/dur and args.self_us <= dur.
  * `bench` — BENCH_results.json written by bench/perf_suite.cc:
    schema_version 1, kind mntp_perf_suite, an environment block, and
    per-workload robust summaries whose sample counts match `reps` and
    whose order statistics are consistent (min<=median<=p95<=max).
  * `query-trace` — JSONL causal query trace written by --query-trace-out
    (schema v1, src/obs/query_trace.h): line 1 is a `meta` object with
    kind mntp_query_trace; every following line is a `query` object with
    a strictly increasing positive id, a kind, a start_ns, and a stages
    array whose entries carry integer sim timestamps (non-decreasing per
    query, none before start_ns), a non-empty stage name, a reason drawn
    from the closed enum of src/obs/reason_codes.h, and a flat fields
    object; at most one `verdict` stage exists per query and it must be
    the last; the meta query_count matches the query-line count. When
    the meta carries a `sampling` block (deterministic sampling or a
    reservoir was active, QueryTracer::Sampling) its accounting must
    conserve ids: minted == kept + sampled_out + dropped and
    query_count == kept - reorder_dropped. Streamed artifacts
    (--query-trace-stream) additionally carry `streamed` and
    `reorder_dropped` meta keys.
  * `trace-events` — streamed trace-event JSONL written by
    --trace-stream-out (kind mntp_trace_events, src/obs/streaming.h):
    line 1 is a close-patched `meta` object; every following line is an
    `event` with non-decreasing t_ns; event_count matches the body.
  * `diff` — cross-run triage record written by `mntp-inspect diff
    --json` (kind mntp_diff, src/obs/diff.h): schema_version 1, the
    diffed artifact kind, a/b provenance, the significance options,
    and ranked sections of named delta entries whose class vocabulary
    is closed and whose significant/regressions tallies and exit_hint
    must be internally consistent (regression implies significant;
    exit_hint is 1 exactly when regressions > 0).
  * `fleet` — fleet-simulation report written by `bench/fleet_qps
    --fleet-out` (kind mntp_fleet_report, src/fleet/report.h): params,
    population and totals blocks whose conservation ledger must balance
    (queries == arrived + dropped; per-server requests sum to arrived;
    cache hits + misses and OWD valid + invalid both equal arrived - kod,
    KoD-limited requests receiving no time response), a throughput block,
    and the 4-row speaker x population and provider-category OWD tables
    whose counts sum to owd_valid with p50<=p90<=p99 per row.
  * `timeline` — JSONL sim-time series written by --timeline-out
    (schema v1, src/obs/timeseries.h): line 1 is a `meta` object with
    kind mntp_timeline and run/sim_end_ns/cadence_ns/series_count; every
    following line is a `series` object with a name, a probe kind from
    {callback, counter, gauge}, string labels, positive samples/stride,
    and a non-empty points array of [t_ns, min, mean, max, last, count]
    rows with strictly ascending t_ns, min<=mean<=max, min<=last<=max,
    count>=1 and counts summing to `samples`; the meta series_count
    matches the series-line count.

Usage:
  check_telemetry_schema.py ARTIFACT
      [--kind report|profile|bench|query-trace|timeline]
      [--require-prefixes a.,b.]
  check_telemetry_schema.py --generate BENCH_BINARY --out report.jsonl \
      [--kind report|profile|query-trace|timeline] [--require-prefixes a.,b.]

With --generate the script first runs `BENCH_BINARY --telemetry-out OUT`
(`--profile-out OUT` when --kind profile, `--query-trace-out OUT` when
--kind query-trace, `--timeline-out OUT` when --kind timeline) — the
binary's own exit code is ignored: shape
checks may evolve independently of the telemetry schema — and then
validates OUT. --require-prefixes (report kind only) additionally
demands at least one metric per listed name prefix, which is how the
CTest wiring asserts that every layer of the stack (sim., net., ntp.,
mntp.) actually reported.
"""

import argparse
import json
import subprocess
import sys


def fail(lineno, msg):
    raise SystemExit(f"SCHEMA ERROR line {lineno}: {msg}")


def check_meta(obj, lineno):
    for key in ("schema_version", "run", "sim_end_ns", "metric_count",
                "event_count"):
        if key not in obj:
            fail(lineno, f"meta missing '{key}'")
    if obj["schema_version"] != 1:
        fail(lineno, f"unsupported schema_version {obj['schema_version']}")
    if not isinstance(obj["run"], str) or not obj["run"]:
        fail(lineno, "meta 'run' must be a non-empty string")
    for key in ("sim_end_ns", "metric_count", "event_count"):
        if not isinstance(obj[key], int) or obj[key] < 0:
            fail(lineno, f"meta '{key}' must be a non-negative integer")


def check_histogram(obj, lineno):
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99", "buckets"):
        if key not in obj:
            fail(lineno, f"histogram missing '{key}'")
    if not isinstance(obj["count"], int) or obj["count"] < 0:
        fail(lineno, "histogram 'count' must be a non-negative integer")
    buckets = obj["buckets"]
    if not isinstance(buckets, list) or not buckets:
        fail(lineno, "histogram 'buckets' must be a non-empty array")
    prev_le = None
    total = 0
    for i, b in enumerate(buckets):
        if set(b) != {"le", "count"}:
            fail(lineno, f"bucket {i} must have exactly 'le' and 'count'")
        le, n = b["le"], b["count"]
        if not isinstance(n, int) or n < 0:
            fail(lineno, f"bucket {i} count must be a non-negative integer")
        total += n
        if i == len(buckets) - 1:
            if le != "inf":
                fail(lineno, "final bucket 'le' must be \"inf\"")
        else:
            if not isinstance(le, (int, float)) or isinstance(le, bool):
                fail(lineno, f"bucket {i} 'le' must be a number")
            if prev_le is not None and le <= prev_le:
                fail(lineno, f"bucket bounds must ascend ({le} after {prev_le})")
            prev_le = le
    if total != obj["count"]:
        fail(lineno, f"bucket counts sum to {total}, histogram count is "
                     f"{obj['count']}")
    if obj["count"] > 0:
        if obj["min"] > obj["max"]:
            fail(lineno, "histogram min > max")
        if not obj["p50"] <= obj["p90"] <= obj["p99"]:
            fail(lineno, "histogram quantiles must satisfy p50<=p90<=p99")


def check_metric(obj, lineno):
    for key in ("kind", "name", "labels"):
        if key not in obj:
            fail(lineno, f"metric missing '{key}'")
    if obj["kind"] not in ("counter", "gauge", "histogram"):
        fail(lineno, f"unknown metric kind '{obj['kind']}'")
    if not isinstance(obj["name"], str) or not obj["name"]:
        fail(lineno, "metric 'name' must be a non-empty string")
    labels = obj["labels"]
    if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in labels.items()):
        fail(lineno, "metric 'labels' must be a string-to-string object")
    if obj["kind"] == "histogram":
        check_histogram(obj, lineno)
    else:
        if "value" not in obj or isinstance(obj["value"], bool) or \
                not isinstance(obj["value"], (int, float)):
            fail(lineno, f"{obj['kind']} needs a numeric 'value'")
        if obj["kind"] == "counter" and obj["value"] < 0:
            fail(lineno, "counter value must be non-negative")


def check_event(obj, lineno):
    for key in ("t_ns", "category", "name", "fields"):
        if key not in obj:
            fail(lineno, f"event missing '{key}'")
    if not isinstance(obj["t_ns"], int):
        fail(lineno, "event 't_ns' must be an integer")
    for key in ("category", "name"):
        if not isinstance(obj[key], str) or not obj[key]:
            fail(lineno, f"event '{key}' must be a non-empty string")
    if not isinstance(obj["fields"], dict):
        fail(lineno, "event 'fields' must be an object")


def validate(path, require_prefixes):
    metric_names = []
    events_seen = 0
    last_t_ns = None
    meta = None
    in_events = False
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                fail(lineno, "blank line")
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as e:
                fail(lineno, f"invalid JSON: {e}")
            kind = obj.get("type")
            if lineno == 1:
                if kind != "meta":
                    fail(lineno, "first line must be the meta object")
                check_meta(obj, lineno)
                meta = obj
                continue
            if kind == "metric":
                if in_events:
                    fail(lineno, "metric line after the first event line")
                check_metric(obj, lineno)
                metric_names.append(obj["name"])
            elif kind == "event":
                in_events = True
                check_event(obj, lineno)
                if last_t_ns is not None and obj["t_ns"] < last_t_ns:
                    fail(lineno, f"event t_ns {obj['t_ns']} out of order "
                                 f"(previous {last_t_ns})")
                last_t_ns = obj["t_ns"]
                events_seen += 1
            elif kind == "meta":
                fail(lineno, "duplicate meta line")
            else:
                fail(lineno, f"unknown line type '{kind}'")

    if meta is None:
        raise SystemExit("SCHEMA ERROR: empty report")
    if meta["metric_count"] != len(metric_names):
        raise SystemExit(
            f"SCHEMA ERROR: meta metric_count {meta['metric_count']} != "
            f"{len(metric_names)} metric lines")
    if meta["event_count"] != events_seen:
        raise SystemExit(
            f"SCHEMA ERROR: meta event_count {meta['event_count']} != "
            f"{events_seen} event lines")
    if metric_names != sorted(metric_names):
        raise SystemExit("SCHEMA ERROR: metric lines not sorted by name")

    for prefix in require_prefixes:
        if not any(n.startswith(prefix) for n in metric_names):
            raise SystemExit(
                f"SCHEMA ERROR: no metric with required prefix '{prefix}' "
                f"(got {sorted(set(metric_names))})")

    print(f"OK: {path} — {len(metric_names)} metrics, {events_seen} events, "
          f"run '{meta['run']}'")


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_profile(path):
    """Chrome trace-event JSON from --profile-out / write_chrome_trace."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        raise SystemExit(f"SCHEMA ERROR: {path}: invalid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise SystemExit("SCHEMA ERROR: profile must be an object with "
                         "'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise SystemExit("SCHEMA ERROR: 'traceEvents' must be an array")
    spans = 0
    names = set()
    for i, e in enumerate(events):
        def efail(msg):
            raise SystemExit(f"SCHEMA ERROR: traceEvents[{i}]: {msg}")
        if not isinstance(e, dict):
            efail("not an object")
        ph = e.get("ph")
        if ph == "M":
            continue  # metadata: name/args only, nothing to enforce
        if ph != "X":
            efail(f"unexpected phase '{ph}' (only M and X are emitted)")
        for key in ("name", "cat", "pid", "tid", "ts", "dur", "args"):
            if key not in e:
                efail(f"X event missing '{key}'")
        if not isinstance(e["name"], str) or not e["name"]:
            efail("'name' must be a non-empty string")
        if not is_number(e["ts"]) or e["ts"] < 0:
            efail("'ts' must be a non-negative number")
        if not is_number(e["dur"]) or e["dur"] < 0:
            efail("'dur' must be a non-negative number")
        args = e["args"]
        if not isinstance(args, dict):
            efail("'args' must be an object")
        for key in ("self_us", "depth"):
            if key not in args:
                efail(f"args missing '{key}'")
        if not is_number(args["self_us"]) or args["self_us"] < 0:
            efail("args.self_us must be a non-negative number")
        # Rounded independently to 3 decimals, so allow half-ULP slack.
        if args["self_us"] > e["dur"] + 0.001:
            efail(f"args.self_us {args['self_us']} exceeds dur {e['dur']}")
        if not isinstance(args["depth"], int) or args["depth"] < 0:
            efail("args.depth must be a non-negative integer")
        spans += 1
        names.add(e["name"])
    print(f"OK: {path} — profile with {spans} spans, "
          f"{len(names)} span names")


def validate_bench(path):
    """BENCH_results.json from bench/perf_suite.cc."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        raise SystemExit(f"SCHEMA ERROR: {path}: invalid JSON: {e}")

    def bfail(msg):
        raise SystemExit(f"SCHEMA ERROR: {path}: {msg}")
    if not isinstance(doc, dict):
        bfail("top level must be an object")
    if doc.get("schema_version") != 1:
        bfail(f"unsupported schema_version {doc.get('schema_version')}")
    if doc.get("kind") != "mntp_perf_suite":
        bfail(f"kind must be 'mntp_perf_suite', got {doc.get('kind')!r}")
    for key in ("reps", "warmup"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            bfail(f"'{key}' must be a non-negative integer")
    if doc["reps"] < 1:
        bfail("'reps' must be >= 1")
    env = doc.get("environment")
    if not isinstance(env, dict):
        bfail("missing 'environment' object")
    for key in ("compiler", "build_type", "build_flags"):
        if not isinstance(env.get(key), str):
            bfail(f"environment.{key} must be a string")
    if not isinstance(env.get("hardware_threads"), int):
        bfail("environment.hardware_threads must be an integer")
    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        bfail("'workloads' must be a non-empty array")
    seen = set()
    for i, w in enumerate(workloads):
        def wfail(msg):
            raise SystemExit(f"SCHEMA ERROR: {path}: workloads[{i}]: {msg}")
        if not isinstance(w, dict):
            wfail("not an object")
        name = w.get("name")
        if not isinstance(name, str) or not name:
            wfail("'name' must be a non-empty string")
        if name in seen:
            wfail(f"duplicate workload name '{name}'")
        seen.add(name)
        if w.get("unit") != "us":
            wfail(f"'unit' must be 'us', got {w.get('unit')!r}")
        for key in ("median_us", "mad_us", "p95_us", "min_us", "max_us",
                    "mean_us"):
            if not is_number(w.get(key)) or w[key] < 0:
                wfail(f"'{key}' must be a non-negative number")
        samples = w.get("samples_us")
        if not isinstance(samples, list) or \
                not all(is_number(s) for s in samples):
            wfail("'samples_us' must be an array of numbers")
        if len(samples) != doc["reps"]:
            wfail(f"{len(samples)} samples but reps is {doc['reps']}")
        if not w["min_us"] <= w["median_us"] <= w["p95_us"] <= w["max_us"]:
            wfail("order statistics must satisfy min<=median<=p95<=max")
    print(f"OK: {path} — perf suite with {len(workloads)} workloads, "
          f"{doc['reps']} reps")


# The closed reason vocabulary of src/obs/reason_codes.h (kAllReasons);
# an emitter inventing a reason outside it is a schema break, because
# downstream causation tables bucket by exact string.
QUERY_TRACE_REASONS = {
    "none", "ok", "channel_defer", "forced_emission", "loss", "timeout",
    "server_error", "validation_error", "popcorn_suppressed",
    "false_ticker", "trend_outlier", "accepted_warmup", "accepted_regular",
    "no_samples", "no_survivors",
}


def check_query_trace_meta(obj, lineno):
    for key in ("schema_version", "kind", "run", "sim_end_ns", "query_count",
                "dropped", "dropped_stages"):
        if key not in obj:
            fail(lineno, f"meta missing '{key}'")
    if obj["schema_version"] != 1:
        fail(lineno, f"unsupported schema_version {obj['schema_version']}")
    if obj["kind"] != "mntp_query_trace":
        fail(lineno, f"meta kind must be 'mntp_query_trace', got "
                     f"{obj['kind']!r}")
    if not isinstance(obj["run"], str) or not obj["run"]:
        fail(lineno, "meta 'run' must be a non-empty string")
    for key in ("sim_end_ns", "query_count", "dropped", "dropped_stages"):
        if not isinstance(obj[key], int) or obj[key] < 0:
            fail(lineno, f"meta '{key}' must be a non-negative integer")
    # Streaming keys (only present when the artifact was streamed through
    # StreamingQueryTraceSink, src/obs/streaming.h).
    if "streamed" in obj and not isinstance(obj["streamed"], bool):
        fail(lineno, "meta 'streamed' must be a boolean")
    if "reorder_dropped" in obj and (
            not isinstance(obj["reorder_dropped"], int)
            or obj["reorder_dropped"] < 0):
        fail(lineno, "meta 'reorder_dropped' must be a non-negative integer")
    # Sampling block (only present when deterministic sampling or a
    # reservoir was active, QueryTracer::Sampling): every minted id must
    # end exactly one way — kept, sampled out, or dropped.
    if "sampling" in obj:
        s = obj["sampling"]
        if not isinstance(s, dict):
            fail(lineno, "meta 'sampling' must be an object")
        for key in ("sample_one_in_n", "seed", "reservoir", "minted",
                    "kept", "sampled_out"):
            if key not in s:
                fail(lineno, f"sampling missing '{key}'")
            if not isinstance(s[key], int) or s[key] < 0:
                fail(lineno, f"sampling '{key}' must be a non-negative "
                             "integer")
        if s["sample_one_in_n"] < 1:
            fail(lineno, "sampling 'sample_one_in_n' must be >= 1")
        if s["minted"] != s["kept"] + s["sampled_out"] + obj["dropped"]:
            fail(lineno, f"sampling accounting broken: minted {s['minted']}"
                         f" != kept {s['kept']} + sampled_out "
                         f"{s['sampled_out']} + dropped {obj['dropped']}")
        reorder_dropped = obj.get("reorder_dropped", 0)
        if obj["query_count"] != s["kept"] - reorder_dropped:
            fail(lineno, f"query_count {obj['query_count']} != kept "
                         f"{s['kept']} - reorder_dropped {reorder_dropped}")


def check_query_stage(stage, qid, i, lineno):
    def sfail(msg):
        fail(lineno, f"query {qid} stages[{i}]: {msg}")
    if not isinstance(stage, dict):
        sfail("not an object")
    for key in ("t_ns", "stage", "reason", "fields"):
        if key not in stage:
            sfail(f"missing '{key}'")
    if not isinstance(stage["t_ns"], int):
        sfail("'t_ns' must be an integer")
    if not isinstance(stage["stage"], str) or not stage["stage"]:
        sfail("'stage' must be a non-empty string")
    if stage["reason"] not in QUERY_TRACE_REASONS:
        sfail(f"unknown reason {stage['reason']!r}")
    fields = stage["fields"]
    if not isinstance(fields, dict):
        sfail("'fields' must be an object")
    for k, v in fields.items():
        if not isinstance(k, str) or not k:
            sfail("field keys must be non-empty strings")
        if not (isinstance(v, str) or isinstance(v, bool) or is_number(v)):
            sfail(f"field {k!r} must be a string, bool or number")


def validate_query_trace(path):
    meta = None
    queries = 0
    last_id = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                fail(lineno, "blank line")
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as e:
                fail(lineno, f"invalid JSON: {e}")
            kind = obj.get("type")
            if lineno == 1:
                if kind != "meta":
                    fail(lineno, "first line must be the meta object")
                check_query_trace_meta(obj, lineno)
                meta = obj
                continue
            if kind == "meta":
                fail(lineno, "duplicate meta line")
            if kind != "query":
                fail(lineno, f"unknown line type '{kind}'")
            for key in ("id", "parent", "kind", "start_ns", "stages"):
                if key not in obj:
                    fail(lineno, f"query missing '{key}'")
            qid = obj["id"]
            if not isinstance(qid, int) or qid <= 0:
                fail(lineno, "query 'id' must be a positive integer")
            if qid <= last_id:
                fail(lineno, f"query ids must be strictly increasing "
                             f"({qid} after {last_id})")
            last_id = qid
            if not isinstance(obj["parent"], int) or obj["parent"] < 0:
                fail(lineno, "query 'parent' must be a non-negative integer")
            if not isinstance(obj["kind"], str) or not obj["kind"]:
                fail(lineno, "query 'kind' must be a non-empty string")
            if not isinstance(obj["start_ns"], int) or obj["start_ns"] < 0:
                fail(lineno, "query 'start_ns' must be a non-negative "
                             "integer")
            stages = obj["stages"]
            if not isinstance(stages, list):
                fail(lineno, "query 'stages' must be an array")
            last_t = obj["start_ns"]
            for i, stage in enumerate(stages):
                check_query_stage(stage, qid, i, lineno)
                if stage["t_ns"] < last_t:
                    fail(lineno, f"query {qid} stages[{i}]: t_ns "
                                 f"{stage['t_ns']} precedes {last_t}")
                last_t = stage["t_ns"]
                if stage["stage"] == "verdict" and i != len(stages) - 1:
                    fail(lineno, f"query {qid}: 'verdict' stage must be "
                                 "last")
            queries += 1

    if meta is None:
        raise SystemExit("SCHEMA ERROR: empty query trace")
    if meta["query_count"] != queries:
        raise SystemExit(
            f"SCHEMA ERROR: meta query_count {meta['query_count']} != "
            f"{queries} query lines")
    print(f"OK: {path} — query trace with {queries} queries, "
          f"run '{meta['run']}'")


def validate_trace_events(path):
    """Streamed trace-event JSONL from --trace-stream-out
    (kind mntp_trace_events, src/obs/streaming.h): the meta line is
    patched at close with the final event_count; every other line is an
    event with non-decreasing t_ns (emission order is sim order)."""
    meta = None
    events_seen = 0
    last_t_ns = None
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                fail(lineno, "blank line")
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as e:
                fail(lineno, f"invalid JSON: {e}")
            kind = obj.get("type")
            if lineno == 1:
                if kind != "meta":
                    fail(lineno, "first line must be the meta object")
                for key in ("schema_version", "kind", "run", "sim_end_ns",
                            "event_count"):
                    if key not in obj:
                        fail(lineno, f"meta missing '{key}'")
                if obj["schema_version"] != 1:
                    fail(lineno, f"unsupported schema_version "
                                 f"{obj['schema_version']}")
                if obj["kind"] != "mntp_trace_events":
                    fail(lineno, f"meta kind must be 'mntp_trace_events', "
                                 f"got {obj['kind']!r}")
                for key in ("sim_end_ns", "event_count"):
                    if not isinstance(obj[key], int) or obj[key] < 0:
                        fail(lineno, f"meta '{key}' must be a non-negative "
                                     "integer")
                meta = obj
                continue
            if kind == "meta":
                fail(lineno, "duplicate meta line")
            if kind != "event":
                fail(lineno, f"unknown line type '{kind}'")
            check_event(obj, lineno)
            if last_t_ns is not None and obj["t_ns"] < last_t_ns:
                fail(lineno, f"event t_ns {obj['t_ns']} out of order "
                             f"(previous {last_t_ns})")
            last_t_ns = obj["t_ns"]
            events_seen += 1

    if meta is None:
        raise SystemExit("SCHEMA ERROR: empty trace-event stream")
    if meta["event_count"] != events_seen:
        raise SystemExit(
            f"SCHEMA ERROR: meta event_count {meta['event_count']} != "
            f"{events_seen} event lines")
    print(f"OK: {path} — trace-event stream with {events_seen} events, "
          f"run '{meta['run']}'")


DIFF_ARTIFACT_KINDS = {"bench", "profile", "report", "query-trace",
                       "timeline"}
# The closed delta-class vocabulary of src/obs/diff.h: exact/shifted are
# the exact-reconciliation classes for accounting counters, added/removed
# mark one-sided rows, equal/changed everything else.
DIFF_ENTRY_CLASSES = {"equal", "changed", "exact", "shifted", "added",
                      "removed"}


def validate_diff(path):
    """Triage record from `mntp-inspect diff --json` (src/obs/diff.h)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        raise SystemExit(f"SCHEMA ERROR: {path}: invalid JSON: {e}")

    def dfail(msg):
        raise SystemExit(f"SCHEMA ERROR: {path}: {msg}")
    if not isinstance(doc, dict):
        dfail("top level must be an object")
    if doc.get("schema_version") != 1:
        dfail(f"unsupported schema_version {doc.get('schema_version')}")
    if doc.get("kind") != "mntp_diff":
        dfail(f"kind must be 'mntp_diff', got {doc.get('kind')!r}")
    if doc.get("artifact_kind") not in DIFF_ARTIFACT_KINDS:
        dfail(f"unknown artifact_kind {doc.get('artifact_kind')!r}")
    for side in ("a", "b"):
        block = doc.get(side)
        if not isinstance(block, dict):
            dfail(f"missing '{side}' provenance object")
        for key in ("path", "run"):
            if not isinstance(block.get(key), str):
                dfail(f"{side}.{key} must be a string")
    options = doc.get("options")
    if not isinstance(options, dict):
        dfail("missing 'options' object")
    for key in ("tolerance", "abs_floor_us", "sigma", "divergence"):
        if not is_number(options.get(key)):
            dfail(f"options.{key} must be a number")
    for key in ("significant", "regressions"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            dfail(f"'{key}' must be a non-negative integer")
    if doc.get("exit_hint") not in (0, 1):
        dfail(f"exit_hint must be 0 or 1, got {doc.get('exit_hint')!r}")
    sections = doc.get("sections")
    if not isinstance(sections, list):
        dfail("'sections' must be an array")
    significant = regressions = entries_total = 0
    for si, section in enumerate(sections):
        def sfail(msg):
            raise SystemExit(f"SCHEMA ERROR: {path}: sections[{si}]: {msg}")
        if not isinstance(section, dict):
            sfail("not an object")
        if not isinstance(section.get("title"), str) or not section["title"]:
            sfail("'title' must be a non-empty string")
        entries = section.get("entries")
        if not isinstance(entries, list):
            sfail("'entries' must be an array")
        for ei, e in enumerate(entries):
            def efail(msg):
                raise SystemExit(f"SCHEMA ERROR: {path}: sections[{si}]"
                                 f".entries[{ei}]: {msg}")
            if not isinstance(e, dict):
                efail("not an object")
            if not isinstance(e.get("name"), str) or not e["name"]:
                efail("'name' must be a non-empty string")
            for key in ("before", "after"):
                if e.get(key) is not None and not is_number(e[key]):
                    efail(f"'{key}' must be a number or null")
            for key in ("delta", "score"):
                if not is_number(e.get(key)):
                    efail(f"'{key}' must be a number")
            for key in ("significant", "regression"):
                if not isinstance(e.get(key), bool):
                    efail(f"'{key}' must be a boolean")
            if e["regression"] and not e["significant"]:
                efail("regression entries must also be significant")
            if e.get("class") not in DIFF_ENTRY_CLASSES:
                efail(f"unknown class {e.get('class')!r}")
            if not isinstance(e.get("note"), str):
                efail("'note' must be a string")
            significant += e["significant"]
            regressions += e["regression"]
            entries_total += 1
    if doc["significant"] != significant:
        dfail(f"'significant' is {doc['significant']} but entries flag "
              f"{significant}")
    if doc["regressions"] != regressions:
        dfail(f"'regressions' is {doc['regressions']} but entries flag "
              f"{regressions}")
    if doc["exit_hint"] != (1 if regressions > 0 else 0):
        dfail(f"exit_hint {doc['exit_hint']} inconsistent with "
              f"{regressions} regression(s)")
    print(f"OK: {path} — diff ({doc['artifact_kind']}) with "
          f"{entries_total} entries, {significant} significant, "
          f"{regressions} regression(s)")


def check_timeline_meta(obj, lineno):
    for key in ("schema_version", "kind", "run", "sim_end_ns", "cadence_ns",
                "series_count"):
        if key not in obj:
            fail(lineno, f"meta missing '{key}'")
    if obj["schema_version"] != 1:
        fail(lineno, f"unsupported schema_version {obj['schema_version']}")
    if obj["kind"] != "mntp_timeline":
        fail(lineno, f"meta kind must be 'mntp_timeline', got "
                     f"{obj['kind']!r}")
    if not isinstance(obj["run"], str) or not obj["run"]:
        fail(lineno, "meta 'run' must be a non-empty string")
    for key in ("sim_end_ns", "series_count"):
        if not isinstance(obj[key], int) or obj[key] < 0:
            fail(lineno, f"meta '{key}' must be a non-negative integer")
    if not isinstance(obj["cadence_ns"], int) or obj["cadence_ns"] <= 0:
        fail(lineno, "meta 'cadence_ns' must be a positive integer")


TIMELINE_PROBE_KINDS = {"callback", "counter", "gauge"}


def check_timeline_series(obj, lineno):
    for key in ("name", "probe", "labels", "samples", "stride", "points"):
        if key not in obj:
            fail(lineno, f"series missing '{key}'")
    if not isinstance(obj["name"], str) or not obj["name"]:
        fail(lineno, "series 'name' must be a non-empty string")
    if obj["probe"] not in TIMELINE_PROBE_KINDS:
        fail(lineno, f"unknown probe kind {obj['probe']!r}")
    labels = obj["labels"]
    if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in labels.items()):
        fail(lineno, "series 'labels' must be a string-to-string object")
    for key in ("samples", "stride"):
        if not isinstance(obj[key], int) or obj[key] < 1:
            fail(lineno, f"series '{key}' must be a positive integer")
    points = obj["points"]
    if not isinstance(points, list) or not points:
        fail(lineno, "series 'points' must be a non-empty array "
                     "(empty series are skipped at export)")
    name = obj["name"]
    last_t = None
    total = 0
    for i, p in enumerate(points):
        def pfail(msg):
            fail(lineno, f"series {name!r} points[{i}]: {msg}")
        if not isinstance(p, list) or len(p) != 6:
            pfail("must be a [t_ns,min,mean,max,last,count] array")
        t_ns, lo, mean, hi, last, count = p
        if not isinstance(t_ns, int):
            pfail("'t_ns' must be an integer")
        if last_t is not None and t_ns <= last_t:
            pfail(f"t_ns {t_ns} not after previous {last_t}")
        last_t = t_ns
        for label, v in (("min", lo), ("mean", mean), ("max", hi),
                         ("last", last)):
            if not is_number(v):
                pfail(f"'{label}' must be a number")
        if not isinstance(count, int) or count < 1:
            pfail("'count' must be a positive integer")
        total += count
        if not lo <= mean <= hi:
            pfail(f"needs min<=mean<=max, got {lo}/{mean}/{hi}")
        if not lo <= last <= hi:
            pfail(f"needs min<=last<=max, got {lo}/{last}/{hi}")
    if total != obj["samples"]:
        fail(lineno, f"series {name!r}: point counts sum to {total}, "
                     f"'samples' is {obj['samples']}")


def validate_timeline(path):
    """Timeline JSONL from --timeline-out (src/obs/timeseries.h)."""
    meta = None
    series_seen = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                fail(lineno, "blank line")
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as e:
                fail(lineno, f"invalid JSON: {e}")
            kind = obj.get("type")
            if lineno == 1:
                if kind != "meta":
                    fail(lineno, "first line must be the meta object")
                check_timeline_meta(obj, lineno)
                meta = obj
                continue
            if kind == "meta":
                fail(lineno, "duplicate meta line")
            if kind != "series":
                fail(lineno, f"unknown line type '{kind}'")
            check_timeline_series(obj, lineno)
            series_seen += 1

    if meta is None:
        raise SystemExit("SCHEMA ERROR: empty timeline")
    if meta["series_count"] != series_seen:
        raise SystemExit(
            f"SCHEMA ERROR: meta series_count {meta['series_count']} != "
            f"{series_seen} series lines")
    print(f"OK: {path} — timeline with {series_seen} series, "
          f"run '{meta['run']}'")


FLEET_SPEAKERS = {"ntp", "sntp"}
FLEET_POPULATIONS = {"wired", "wireless"}
FLEET_CATEGORIES = ["cloud", "isp", "broadband", "mobile"]


def check_fleet_owd_row(row, where, ffail):
    if not isinstance(row, dict):
        ffail(f"{where}: not an object")
    if not isinstance(row.get("count"), int) or row["count"] < 0:
        ffail(f"{where}: 'count' must be a non-negative integer")
    for key in ("p50_ms", "p90_ms", "p99_ms", "mean_ms", "min_ms", "max_ms"):
        if not is_number(row.get(key)) or row[key] < 0:
            ffail(f"{where}: '{key}' must be a non-negative number")
    if row["count"] > 0:
        if not row["p50_ms"] <= row["p90_ms"] <= row["p99_ms"]:
            ffail(f"{where}: quantiles must satisfy p50<=p90<=p99")
        if row["min_ms"] > row["max_ms"]:
            ffail(f"{where}: min_ms > max_ms")


def validate_fleet(path):
    """Fleet report from bench/fleet_qps --fleet-out (src/fleet/report.h).

    Beyond field shapes, this enforces the simulator's conservation
    ledger: every query is accounted for exactly once at every stage
    (issued -> arrived/dropped -> per-server -> cache hit/miss and OWD
    valid/invalid, both net of KoD-limited requests, which receive no
    time response)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        raise SystemExit(f"SCHEMA ERROR: {path}: invalid JSON: {e}")

    def ffail(msg):
        raise SystemExit(f"SCHEMA ERROR: {path}: {msg}")
    if not isinstance(doc, dict):
        ffail("top level must be an object")
    if doc.get("schema_version") != 1:
        ffail(f"unsupported schema_version {doc.get('schema_version')}")
    if doc.get("kind") != "mntp_fleet_report":
        ffail(f"kind must be 'mntp_fleet_report', got {doc.get('kind')!r}")

    params = doc.get("params")
    if not isinstance(params, dict):
        ffail("missing 'params' object")
    for key in ("clients", "shards", "seed", "kod_limit_per_slice"):
        if not isinstance(params.get(key), int) or params[key] < 0:
            ffail(f"params.{key} must be a non-negative integer")
    for key in ("duration_s", "cache_bucket_ms", "batch_window_ms"):
        if not is_number(params.get(key)) or params[key] <= 0:
            ffail(f"params.{key} must be a positive number")
    for key in ("use_snr_lut", "coarse_ou_advance"):
        if not isinstance(params.get(key), bool):
            ffail(f"params.{key} must be a boolean")

    pop = doc.get("population")
    if not isinstance(pop, dict):
        ffail("missing 'population' object")
    for key in ("clients", "sntp_clients", "ntp_clients", "wireless_clients",
                "wired_clients"):
        if not isinstance(pop.get(key), int) or pop[key] < 0:
            ffail(f"population.{key} must be a non-negative integer")
    if pop["sntp_clients"] + pop["ntp_clients"] != pop["clients"]:
        ffail("population: sntp_clients + ntp_clients != clients")
    if pop["wireless_clients"] + pop["wired_clients"] != pop["clients"]:
        ffail("population: wireless_clients + wired_clients != clients")
    if pop["clients"] != params["clients"]:
        ffail("population.clients != params.clients")

    totals = doc.get("totals")
    if not isinstance(totals, dict):
        ffail("missing 'totals' object")
    for key in ("queries", "arrived", "dropped", "kod", "batches",
                "cache_hits", "cache_misses", "owd_valid", "owd_invalid"):
        if not isinstance(totals.get(key), int) or totals[key] < 0:
            ffail(f"totals.{key} must be a non-negative integer")
    if totals["queries"] != totals["arrived"] + totals["dropped"]:
        ffail("totals: queries != arrived + dropped")
    served = totals["arrived"] - totals["kod"]
    if totals["cache_hits"] + totals["cache_misses"] != served:
        ffail("totals: cache_hits + cache_misses != arrived - kod")
    if totals["owd_valid"] + totals["owd_invalid"] != served:
        ffail("totals: owd_valid + owd_invalid != arrived - kod")

    throughput = doc.get("throughput")
    if not isinstance(throughput, dict):
        ffail("missing 'throughput' object")
    if not isinstance(throughput.get("threads"), int) or \
            throughput["threads"] < 1:
        ffail("throughput.threads must be a positive integer")
    for key in ("wall_s", "qps", "qps_per_core"):
        if not is_number(throughput.get(key)) or throughput[key] < 0:
            ffail(f"throughput.{key} must be a non-negative number")

    servers = doc.get("servers")
    if not isinstance(servers, list) or not servers:
        ffail("'servers' must be a non-empty array")
    server_sum = 0
    seen_ids = set()
    for i, s in enumerate(servers):
        if not isinstance(s, dict):
            ffail(f"servers[{i}]: not an object")
        if not isinstance(s.get("id"), str) or not s["id"]:
            ffail(f"servers[{i}]: 'id' must be a non-empty string")
        if s["id"] in seen_ids:
            ffail(f"servers[{i}]: duplicate id {s['id']!r}")
        seen_ids.add(s["id"])
        if not isinstance(s.get("requests"), int) or s["requests"] < 0:
            ffail(f"servers[{i}]: 'requests' must be a non-negative integer")
        server_sum += s["requests"]
    if server_sum != totals["arrived"]:
        ffail(f"per-server requests sum to {server_sum}, totals.arrived is "
              f"{totals['arrived']}")

    owd = doc.get("owd")
    if not isinstance(owd, list) or len(owd) != 4:
        ffail("'owd' must be an array of the 4 speaker x population rows")
    owd_count = 0
    seen_classes = set()
    for i, row in enumerate(owd):
        where = f"owd[{i}]"
        check_fleet_owd_row(row, where, ffail)
        if row.get("speaker") not in FLEET_SPEAKERS:
            ffail(f"{where}: unknown speaker {row.get('speaker')!r}")
        if row.get("population") not in FLEET_POPULATIONS:
            ffail(f"{where}: unknown population {row.get('population')!r}")
        key = (row["speaker"], row["population"])
        if key in seen_classes:
            ffail(f"{where}: duplicate class {key}")
        seen_classes.add(key)
        owd_count += row["count"]
    if owd_count != totals["owd_valid"]:
        ffail(f"owd row counts sum to {owd_count}, totals.owd_valid is "
              f"{totals['owd_valid']}")

    cat = doc.get("category_owd")
    if not isinstance(cat, list) or len(cat) != 4:
        ffail("'category_owd' must be an array of the 4 provider categories")
    cat_count = 0
    for i, row in enumerate(cat):
        where = f"category_owd[{i}]"
        check_fleet_owd_row(row, where, ffail)
        if row.get("category") != FLEET_CATEGORIES[i]:
            ffail(f"{where}: expected category "
                  f"{FLEET_CATEGORIES[i]!r}, got {row.get('category')!r}")
        cat_count += row["count"]
    if cat_count != totals["owd_valid"]:
        ffail(f"category_owd counts sum to {cat_count}, totals.owd_valid is "
              f"{totals['owd_valid']}")

    print(f"OK: {path} — fleet report, {params['clients']} clients, "
          f"{totals['queries']} queries, "
          f"{throughput['qps_per_core']:.0f} q/s/core")


def detect_kind(path):
    """Whole-file JSON => profile/bench; otherwise JSONL run report."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError):
        # JSONL: the first line's meta kind separates the two.
        try:
            with open(path, "r", encoding="utf-8") as f:
                first = json.loads(f.readline())
            if isinstance(first, dict) and \
                    first.get("kind") == "mntp_query_trace":
                return "query-trace"
            if isinstance(first, dict) and \
                    first.get("kind") == "mntp_timeline":
                return "timeline"
            if isinstance(first, dict) and \
                    first.get("kind") == "mntp_trace_events":
                return "trace-events"
        except (json.JSONDecodeError, UnicodeDecodeError):
            pass
        return "report"
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "profile"
    if isinstance(doc, dict) and doc.get("kind") == "mntp_perf_suite":
        return "bench"
    if isinstance(doc, dict) and doc.get("kind") == "mntp_diff":
        return "diff"
    if isinstance(doc, dict) and doc.get("kind") == "mntp_fleet_report":
        return "fleet"
    # A zero-query trace is a single meta line, i.e. valid whole-file JSON.
    if isinstance(doc, dict) and doc.get("kind") == "mntp_query_trace":
        return "query-trace"
    # Likewise a timeline with no non-empty series.
    if isinstance(doc, dict) and doc.get("kind") == "mntp_timeline":
        return "timeline"
    # And an event stream that captured zero events.
    if isinstance(doc, dict) and doc.get("kind") == "mntp_trace_events":
        return "trace-events"
    raise SystemExit(f"SCHEMA ERROR: {path}: unrecognized artifact "
                     "(pass --kind to force)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", nargs="?", help="artifact to validate")
    parser.add_argument("--kind",
                        choices=("report", "profile", "bench", "query-trace",
                                 "timeline", "trace-events", "diff", "fleet"),
                        help="artifact kind; detected from content if omitted")
    parser.add_argument("--generate", metavar="BINARY",
                        help="bench binary to run with --telemetry-out "
                             "(--profile-out when --kind profile) first")
    parser.add_argument("--out", help="artifact path for --generate")
    parser.add_argument("--extra-args", default="",
                        help="space-separated extra flags appended to the "
                             "--generate command (e.g. "
                             "'--query-trace-sample 4 --query-trace-stream')")
    parser.add_argument("--require-prefixes", default="",
                        help="comma-separated metric-name prefixes that must "
                             "each match at least one metric (report kind)")
    args = parser.parse_args()

    if args.generate:
        if not args.out:
            parser.error("--generate requires --out")
        path = args.out
        flag = {"profile": "--profile-out",
                "query-trace": "--query-trace-out",
                "timeline": "--timeline-out",
                "trace-events": "--trace-stream-out",
                "fleet": "--fleet-out"}.get(args.kind, "--telemetry-out")
        # The bench's own PASS/FAIL shape checks are not under test here;
        # only the telemetry output is.
        subprocess.run([args.generate, flag, path] + args.extra_args.split(),
                       stdout=subprocess.DEVNULL, check=False)
    elif args.artifact:
        path = args.artifact
    else:
        parser.error("need an artifact path or --generate")

    kind = args.kind or detect_kind(path)
    if kind == "profile":
        validate_profile(path)
    elif kind == "bench":
        validate_bench(path)
    elif kind == "query-trace":
        validate_query_trace(path)
    elif kind == "timeline":
        validate_timeline(path)
    elif kind == "trace-events":
        validate_trace_events(path)
    elif kind == "diff":
        validate_diff(path)
    elif kind == "fleet":
        validate_fleet(path)
    else:
        prefixes = [p for p in args.require_prefixes.split(",") if p]
        validate(path, prefixes)


if __name__ == "__main__":
    main()
