#!/usr/bin/env python3
"""Assert that the two bench gates can never drift apart.

  check_gate_agreement.py BASELINE CANDIDATE --inspect MNTP_INSPECT
      [--tolerance R] [--abs-floor-us N]

The repo has two implementations of the bench regression gate:
`scripts/bench_compare.py` (Python, drives CI) and `mntp-inspect diff`
(C++, src/obs/diff.cc, drives triage). Both claim the same math:

    candidate_median <= baseline_median * (1 + tolerance)
                        + max(abs_floor_us, 4 * baseline_mad)

This script runs BOTH gates on the same baseline/candidate pair and
fails unless they agree per workload AND overall:

  * bench_compare.py per-workload PASS/FAIL lines (parsed from stdout)
    must match the per-workload `regression` flags in the diff JSON —
    including missing-from-candidate workloads, which both gates fail.
  * bench_compare's exit code (0 pass / 1 regression) must match the
    diff exit code (0 identical-within-tolerance / 1 regression).

Run it on an identical pair and on a regressed pair (the CTest wiring
uses tests/data/diff_bench_{base,regressed}.json) so agreement is
checked on both sides of the gate. Exit 0 on agreement, 1 on any
divergence, 2 on bad inputs.
"""

import argparse
import json
import os
import re
import subprocess
import sys


def run_bench_compare(baseline, candidate, tolerance, abs_floor_us):
    """Returns ({workload: passed_bool}, exit_code)."""
    script = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "bench_compare.py")
    cmd = [sys.executable, script, baseline, candidate,
           "--tolerance", str(tolerance), "--abs-floor-us", str(abs_floor_us)]
    r = subprocess.run(cmd, capture_output=True, text=True)
    if r.returncode not in (0, 1):
        raise SystemExit(f"check_gate_agreement: bench_compare errored "
                         f"(exit {r.returncode}):\n{r.stdout}{r.stderr}")
    verdicts = {}
    # "PASS name: median ..." / "FAIL name: median ..." /
    # "FAIL name: missing from candidate"; budget lines ("FAIL budget
    # a:b:p: ...") are not per-workload gates and are skipped.
    for line in r.stdout.splitlines():
        m = re.match(r"^(PASS|FAIL) (?!budget )([^:]+):", line)
        if m:
            verdicts[m.group(2)] = m.group(1) == "PASS"
    return verdicts, r.returncode


def run_inspect_diff(inspect, baseline, candidate, tolerance, abs_floor_us):
    """Returns ({workload: passed_bool}, exit_code)."""
    cmd = [inspect, "diff", "--json", "--tolerance", str(tolerance),
           "--abs-floor-us", str(abs_floor_us), baseline, candidate]
    r = subprocess.run(cmd, capture_output=True, text=True)
    if r.returncode not in (0, 1):
        raise SystemExit(f"check_gate_agreement: mntp-inspect diff errored "
                         f"(exit {r.returncode}):\n{r.stdout}{r.stderr}")
    try:
        doc = json.loads(r.stdout)
    except json.JSONDecodeError as e:
        raise SystemExit(f"check_gate_agreement: diff --json output is not "
                         f"JSON: {e}")
    verdicts = {}
    for section in doc.get("sections", []):
        for entry in section.get("entries", []):
            # "added" rows are candidate-only workloads: bench_compare
            # prints a NOTE, not a verdict, so they are not part of the
            # agreement surface.
            if entry.get("class") == "added":
                continue
            verdicts[entry["name"]] = not entry["regression"]
    return verdicts, r.returncode


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--inspect", required=True,
                        help="path to the mntp-inspect binary")
    parser.add_argument("--tolerance", type=float, default=0.5)
    parser.add_argument("--abs-floor-us", type=float, default=200.0)
    args = parser.parse_args()

    py_verdicts, py_exit = run_bench_compare(
        args.baseline, args.candidate, args.tolerance, args.abs_floor_us)
    cc_verdicts, cc_exit = run_inspect_diff(
        args.inspect, args.baseline, args.candidate, args.tolerance,
        args.abs_floor_us)

    if not py_verdicts:
        raise SystemExit("check_gate_agreement: bench_compare produced no "
                         "per-workload verdicts")

    divergences = []
    for name in sorted(set(py_verdicts) | set(cc_verdicts)):
        py = py_verdicts.get(name)
        cc = cc_verdicts.get(name)
        if py is None or cc is None:
            divergences.append(f"{name}: present in "
                               f"{'diff only' if py is None else 'bench_compare only'}")
        elif py != cc:
            divergences.append(
                f"{name}: bench_compare says {'PASS' if py else 'FAIL'}, "
                f"diff says {'pass' if cc else 'regression'}")
    if py_exit != cc_exit:
        divergences.append(f"exit codes differ: bench_compare {py_exit}, "
                           f"diff {cc_exit}")

    if divergences:
        print("GATE DISAGREEMENT:")
        for d in divergences:
            print(f"  {d}")
        return 1
    print(f"OK: both gates agree on {len(py_verdicts)} workload(s) "
          f"(exit {py_exit}) for {args.candidate} vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
