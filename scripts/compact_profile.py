#!/usr/bin/env python3
"""Compact a Chrome span profile to one complete event per span name.

  compact_profile.py IN_profile.json OUT_profile.json

A perf-suite --profile-out trace carries hundreds of thousands of span
events (~50 MB) — far too heavy to commit as a baseline. But every
consumer of a profile *pair* in this repo (`mntp-inspect diff`,
`bench_compare.py --profile`) aggregates by span name first: count,
summed wall time, summed self time. This script performs that exact
aggregation ahead of time, emitting a valid (tiny) Chrome trace with a
single ph:"X" event per span name whose `dur` is the summed wall time
and `args.self_us` the summed self time; the original event count is
preserved in `args.agg_count` and the event count collapses to 1.

Diff a compacted profile against another COMPACTED profile of a run
with the same shape (same suite, same reps): the summed totals line up
and the span attribution is identical to diffing the full traces. This
is what CI's bench-gate does against the committed
BENCH_baseline_profile.json. Do not diff a compacted profile against a
full one — the totals agree but the per-name event counts will not.

Exit 0 on success, 2 on bad inputs.
"""

import json
import sys


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {sys.argv[0]} IN_profile.json OUT_profile.json",
              file=sys.stderr)
        return 2
    src, dst = sys.argv[1], sys.argv[2]
    try:
        with open(src, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compact_profile: cannot load {src}: {e}", file=sys.stderr)
        return 2
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"compact_profile: {src} has no traceEvents array",
              file=sys.stderr)
        return 2

    spans = {}
    metas = []
    for e in events:
        if not isinstance(e, dict):
            continue
        if e.get("ph") == "M":
            metas.append(e)
            continue
        if e.get("ph") != "X":
            continue
        agg = spans.setdefault(e.get("name", ""),
                               {"count": 0, "total_us": 0.0, "self_us": 0.0})
        agg["count"] += 1
        agg["total_us"] += float(e.get("dur", 0.0))
        agg["self_us"] += float(e.get("args", {}).get("self_us", 0.0))

    out_events = list(metas)
    ts = 0
    for name in sorted(spans):
        agg = spans[name]
        out_events.append({
            "name": name,
            "cat": "aggregate",
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": ts,
            "dur": round(agg["total_us"], 3),
            "args": {
                "self_us": round(min(agg["self_us"], agg["total_us"]), 3),
                "depth": 0,
                "agg_count": agg["count"],
            },
        })
        # Non-overlapping synthetic timestamps keep trace viewers happy.
        ts += int(agg["total_us"]) + 1

    compact = {k: v for k, v in doc.items() if k != "traceEvents"}
    compact["traceEvents"] = out_events
    try:
        with open(dst, "w", encoding="utf-8") as f:
            json.dump(compact, f, indent=1)
            f.write("\n")
    except OSError as e:
        print(f"compact_profile: cannot write {dst}: {e}", file=sys.stderr)
        return 2
    print(f"compact_profile: {dst} — {len(spans)} span aggregate(s) from "
          f"{sum(a['count'] for a in spans.values())} events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
